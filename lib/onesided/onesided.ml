open Sim_engine
module P = Portals

type sym = int

type eq_side = Rx | Tx

let eq_side_to_string = function Rx -> "rx" | Tx -> "tx"

type error =
  | Eq_alloc_failed of { side : eq_side; capacity : int; cause : P.Errors.t }
  | Eq_overflow of { side : eq_side; dropped : int }

exception Error of error

let pp_error ppf = function
  | Eq_alloc_failed { side; capacity; cause } ->
    Format.fprintf ppf
      "Onesided: %s event queue allocation (capacity %d) failed: %a"
      (eq_side_to_string side) capacity P.Errors.pp cause
  | Eq_overflow { side; dropped } ->
    Format.fprintf ppf
      "Onesided: %s event queue overflowed (%d events dropped) — completions \
       were lost"
      (eq_side_to_string side) dropped

let () =
  Printexc.register_printer (function
    | Error e -> Some (Format.asprintf "%a" pp_error e)
    | _ -> None)

type region = { r_id : int; r_buffer : bytes; r_me : P.Handle.me }

(* Counters and latency summaries for the RMA layer, registered once per
   endpoint under the process label (like [Ni]'s "ni.*" probes). *)
type rma_metrics = {
  m_put : Metrics.counter;
  m_get : Metrics.counter;
  m_accumulate : Metrics.counter;
  m_fetch_add : Metrics.counter;
  m_cas : Metrics.counter;
  m_flush : Metrics.counter;
  m_lock_acquired : Metrics.counter;
  m_lock_retries : Metrics.counter;
  m_lock_wait : Metrics.summary;
}

type t = {
  os_ni : P.Ni.t;
  tp : Simnet.Transport.t;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  portal_index : int;
  rx_eqh : P.Handle.eq;
  rx_eqq : P.Event.Queue.t; (* incoming one-sided ops on my regions *)
  tx_eqh : P.Handle.eq;
  tx_eqq : P.Event.Queue.t; (* completions of my puts/gets/atomics *)
  dead : (int, unit) Hashtbl.t; (* crashed, not-yet-restarted nids *)
  m : rma_metrics;
  mutable regions : region list;
  mutable next_region : int;
  mutable outstanding : int; (* puts awaiting acknowledgment *)
  mutable next_op : int;
  completed_gets : (int, int) Hashtbl.t; (* op id -> mlength *)
  op_target : (int, int) Hashtbl.t; (* unacked op id -> target pe *)
  pending_pe : (int, int) Hashtbl.t; (* target pe -> unacked op count *)
  forget : (int, unit) Hashtbl.t; (* op ids whose reply nobody reads *)
}

let ok_exn = P.Errors.ok_exn

let create ni ~ranks ~rank ?(portal_index = 7) ?(eq_capacity = 4096) () =
  if rank < 0 || rank >= Array.length ranks then
    invalid_arg "Onesided.create: rank out of range";
  let alloc_eq side =
    match P.Ni.eq_alloc ni ~capacity:eq_capacity with
    | Ok h -> Ok h
    | Error cause -> Error (Eq_alloc_failed { side; capacity = eq_capacity; cause })
  in
  match alloc_eq Rx with
  | Error _ as e -> e
  | Ok rx_eqh ->
    (match alloc_eq Tx with
    | Error _ as e -> e
    | Ok tx_eqh ->
      let tp = P.Ni.transport ni in
      let dead = Hashtbl.create 8 in
      tp.Simnet.Transport.on_crash (fun nid -> Hashtbl.replace dead nid ());
      tp.Simnet.Transport.on_restart (fun nid -> Hashtbl.remove dead nid);
      let reg = Scheduler.metrics (P.Ni.sched ni) in
      let labels =
        [ ("proc", Format.asprintf "%a" Simnet.Proc_id.pp (P.Ni.id ni)) ]
      in
      let c name = Metrics.counter reg ~labels name in
      let m =
        {
          m_put = c "rma.put";
          m_get = c "rma.get";
          m_accumulate = c "rma.accumulate";
          m_fetch_add = c "rma.fetch_add";
          m_cas = c "rma.cas";
          m_flush = c "rma.flush";
          m_lock_acquired = c "rma.lock_acquired";
          m_lock_retries = c "rma.lock_retries";
          m_lock_wait = Metrics.summary reg ~labels "rma.lock_wait_us";
        }
      in
      Ok
        {
          os_ni = ni;
          tp;
          ranks;
          my_rank = rank;
          portal_index;
          rx_eqh;
          rx_eqq = ok_exn ~op:"rx eq" (P.Ni.eq ni rx_eqh);
          tx_eqh;
          tx_eqq = ok_exn ~op:"tx eq" (P.Ni.eq ni tx_eqh);
          dead;
          m;
          regions = [];
          next_region = 0;
          outstanding = 0;
          next_op = 0;
          completed_gets = Hashtbl.create 16;
          op_target = Hashtbl.create 16;
          pending_pe = Hashtbl.create 8;
          forget = Hashtbl.create 16;
        })

let create_exn ni ~ranks ~rank ?portal_index ?eq_capacity () =
  match create ni ~ranks ~rank ?portal_index ?eq_capacity () with
  | Ok t -> t
  | Error e -> raise (Error e)

let rank t = t.my_rank
let size t = Array.length t.ranks

let region_options =
  {
    P.Md.op_put = true;
    op_get = true;
    manage_remote = true;
    truncate = false;
    ack_disable = false;
  }

let alloc t len =
  if len <= 0 then invalid_arg "Onesided.alloc: region must be non-empty";
  let r_id = t.next_region in
  t.next_region <- r_id + 1;
  (* Regions start zeroed so flag/counter idioms have a defined initial
     state (unlike Bytes.create, whose contents are arbitrary). *)
  let r_buffer = Bytes.make len '\x00' in
  let meh =
    ok_exn ~op:"region me_attach"
      (P.Ni.me_attach t.os_ni ~portal_index:t.portal_index
         ~match_id:P.Match_id.any
         ~match_bits:(P.Match_bits.of_int r_id)
         ~ignore_bits:P.Match_bits.zero ~unlink:P.Md.Retain ~pos:`Tail ())
  in
  let _mdh =
    ok_exn ~op:"region md_attach"
      (P.Ni.md_attach t.os_ni ~me:meh
         (P.Ni.md_spec ~options:region_options ~threshold:P.Md.Infinite
            ~unlink:P.Md.Retain ~eq:t.rx_eqh ~user_ptr:r_id r_buffer))
  in
  t.regions <- { r_id; r_buffer; r_me = meh } :: t.regions;
  r_id

let find_region t sym =
  match List.find_opt (fun r -> r.r_id = sym) t.regions with
  | Some r -> r
  | None -> invalid_arg "Onesided: unknown region"

let region_bytes t sym = (find_region t sym).r_buffer

let check_pe t pe =
  if pe < 0 || pe >= Array.length t.ranks then
    invalid_arg "Onesided: pe out of range"

let region_len t sym = Bytes.length (find_region t sym).r_buffer

let pending_to t pe =
  match Hashtbl.find_opt t.pending_pe pe with Some n -> n | None -> 0

let bump_pending t pe d = Hashtbl.replace t.pending_pe pe (pending_to t pe + d)

(* Retire an op from per-target accounting once its ack/reply arrived. *)
let note_op_done t op_id =
  match Hashtbl.find_opt t.op_target op_id with
  | None -> ()
  | Some pe ->
    Hashtbl.remove t.op_target op_id;
    bump_pending t pe (-1)

(* Process one local completion event. *)
let handle_tx_event t (ev : P.Event.t) =
  match ev.P.Event.kind with
  | P.Event.Ack ->
    t.outstanding <- t.outstanding - 1;
    note_op_done t ev.P.Event.md_user_ptr
  | P.Event.Reply ->
    note_op_done t ev.P.Event.md_user_ptr;
    if Hashtbl.mem t.forget ev.P.Event.md_user_ptr then
      Hashtbl.remove t.forget ev.P.Event.md_user_ptr
    else
      Hashtbl.replace t.completed_gets ev.P.Event.md_user_ptr ev.P.Event.mlength
  | P.Event.Sent | P.Event.Put | P.Event.Get | P.Event.Atomic
  | P.Event.Triggered -> ()

(* A dropped tx event is an ack/reply this endpoint will never see: the
   outstanding accounting can no longer converge, so every completion-
   dependent call turns the silent hang into a typed error. *)
let check_tx_overflow t =
  let d = P.Event.Queue.dropped t.tx_eqq in
  if d > 0 then raise (Error (Eq_overflow { side = Tx; dropped = d }))

let drain_tx t =
  let rec go () =
    match P.Event.Queue.get t.tx_eqq with
    | None -> ()
    | Some ev ->
      handle_tx_event t ev;
      go ()
  in
  go ()

(* Drain, then block on the tx queue until [pred] holds. *)
let wait_tx t pred =
  drain_tx t;
  check_tx_overflow t;
  while not (pred ()) do
    handle_tx_event t (P.Event.Queue.wait t.tx_eqq);
    drain_tx t;
    check_tx_overflow t
  done

let fresh_op t =
  let op_id = t.next_op in
  t.next_op <- op_id + 1;
  op_id

let put t sym ~pe ~offset data =
  check_pe t pe;
  if offset < 0 || offset + Bytes.length data > region_len t sym then
    invalid_arg "Onesided.put: outside the region";
  drain_tx t;
  check_tx_overflow t;
  let op_id = fresh_op t in
  (* Threshold 2: SENT then ACK; the descriptor self-cleans after the
     target confirms the deposit. *)
  let mdh =
    ok_exn ~op:"put md_bind"
      (P.Ni.md_bind t.os_ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 2) ~unlink:P.Md.Unlink
            ~eq:t.tx_eqh ~user_ptr:op_id data))
  in
  t.outstanding <- t.outstanding + 1;
  Hashtbl.replace t.op_target op_id pe;
  bump_pending t pe 1;
  Metrics.incr t.m.m_put;
  ok_exn ~op:"put"
    (P.Ni.put t.os_ni ~md:mdh ~ack:true
       (P.Ni.op ~target:t.ranks.(pe) ~portal_index:t.portal_index
          ~match_bits:(P.Match_bits.of_int sym) ~offset ()))

let quiet t = wait_tx t (fun () -> Hashtbl.length t.op_target = 0)

let flush_to t ~pe =
  Metrics.incr t.m.m_flush;
  wait_tx t (fun () -> pending_to t pe = 0)

let outstanding_puts t =
  drain_tx t;
  t.outstanding

let get t sym ~pe ~offset ~len =
  check_pe t pe;
  if len < 0 || offset < 0 || offset + len > region_len t sym then
    invalid_arg "Onesided.get: outside the region";
  drain_tx t;
  check_tx_overflow t;
  let op_id = fresh_op t in
  let dest = Bytes.create len in
  let mdh =
    ok_exn ~op:"get md_bind"
      (P.Ni.md_bind t.os_ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink
            ~eq:t.tx_eqh ~user_ptr:op_id dest))
  in
  Metrics.incr t.m.m_get;
  ok_exn ~op:"get"
    (P.Ni.get t.os_ni ~md:mdh
       (P.Ni.op ~target:t.ranks.(pe) ~portal_index:t.portal_index
          ~match_bits:(P.Match_bits.of_int sym) ~offset ()));
  wait_tx t (fun () -> Hashtbl.mem t.completed_gets op_id);
  Hashtbl.remove t.completed_gets op_id;
  dest

(* Issue an atomic without waiting for its reply. The 8-byte landing
   descriptor self-cleans on the reply (threshold 1, unlink); with
   [forget] the fetched value is discarded on arrival instead of parked
   in [completed_gets]. *)
let atomic_post t sym ~pe ~offset ~aop ~operand ~compare ~forget =
  check_pe t pe;
  if offset < 0 || offset + P.Wire.atomic_word_size > region_len t sym then
    invalid_arg "Onesided.atomic: outside the region";
  drain_tx t;
  check_tx_overflow t;
  let op_id = fresh_op t in
  let dest = Bytes.create P.Wire.atomic_word_size in
  let mdh =
    ok_exn ~op:"atomic md_bind"
      (P.Ni.md_bind t.os_ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink
            ~eq:t.tx_eqh ~user_ptr:op_id dest))
  in
  Hashtbl.replace t.op_target op_id pe;
  bump_pending t pe 1;
  if forget then Hashtbl.replace t.forget op_id ();
  ok_exn ~op:"atomic"
    (P.Ni.atomic t.os_ni ~md:mdh ~aop ~operand ~compare
       (P.Ni.op ~target:t.ranks.(pe) ~portal_index:t.portal_index
          ~match_bits:(P.Match_bits.of_int sym) ~offset ()));
  (op_id, dest)

let atomic_fetch t sym ~pe ~offset ~aop ~operand ~compare =
  let op_id, dest =
    atomic_post t sym ~pe ~offset ~aop ~operand ~compare ~forget:false
  in
  wait_tx t (fun () -> Hashtbl.mem t.completed_gets op_id);
  Hashtbl.remove t.completed_gets op_id;
  Bytes.get_int64_le dest 0

let fetch_and_add t sym ~pe ~offset delta =
  Metrics.incr t.m.m_fetch_add;
  atomic_fetch t sym ~pe ~offset ~aop:P.Wire.Fetch_add ~operand:delta
    ~compare:0L

let swap t sym ~pe ~offset value =
  atomic_fetch t sym ~pe ~offset ~aop:P.Wire.Swap ~operand:value ~compare:0L

let compare_and_swap t sym ~pe ~offset ~expected ~desired =
  Metrics.incr t.m.m_cas;
  atomic_fetch t sym ~pe ~offset ~aop:P.Wire.Cas ~operand:desired
    ~compare:expected

let wait_until t sym ~offset ~value =
  let buffer = region_bytes t sym in
  if offset < 0 || offset >= Bytes.length buffer then
    invalid_arg "Onesided.wait_until: outside the region";
  (* Only drops that happen while this wait is in progress can cost it a
     wakeup; earlier overflow is survivable because the flag byte itself
     is re-checked first. *)
  let baseline = P.Event.Queue.dropped t.rx_eqq in
  while Bytes.get buffer offset <> value do
    let d = P.Event.Queue.dropped t.rx_eqq in
    if d > baseline then raise (Error (Eq_overflow { side = Rx; dropped = d }));
    (* Any incoming one-sided operation wakes us to re-check. *)
    ignore (P.Event.Queue.wait t.rx_eqq)
  done

let barrier_value = '\x01'

let free_region t sym =
  let r = find_region t sym in
  t.regions <- List.filter (fun r' -> r'.r_id <> sym) t.regions;
  (* Incoming traffic may still hold the MDs briefly; a busy unlink only
     means the match entry dies on the next quiescent point. *)
  ignore (P.Ni.me_unlink t.os_ni r.r_me)

(* ------------------------------------------------------------------ *)
(* foMPI-shaped windows *)

type lock_kind = Shared | Exclusive

type win = {
  w_os : t;
  w_sym : sym;
  w_size : int; (* usable data bytes, excluding the lock word *)
  w_held : (int, lock_kind) Hashtbl.t; (* target rank -> my hold *)
  mutable w_freed : bool;
}

module Win = struct
  (* Window layout on every rank: a 64-bit lock word at offset 0, data
     at [data_base, data_base + size). The lock word packs an exclusive
     holder tag in the high 32 bits — (rank+1) in the upper 16, the
     holder's node incarnation in the lower 16, 0 meaning free — over a
     shared-holder count in the low 32 bits (the foMPI scheme). Lock
     acquisition is pure Portals atomics on the target's word; the
     incarnation in the tag is what lets survivors fence a holder that
     crashed and recover the lock. *)
  let data_base = P.Wire.atomic_word_size
  let lock_pos = 0

  let tag_of word = Int64.to_int (Int64.shift_right_logical word 32)
  let shared_of word = Int64.to_int (Int64.logand word 0xFFFF_FFFFL)

  let pack ~tag ~shared =
    Int64.logor
      (Int64.shift_left (Int64.of_int (tag land 0xFFFF_FFFF)) 32)
      (Int64.of_int (shared land 0xFFFF_FFFF))

  let node_inc os rank =
    os.tp.Simnet.Transport.node_incarnation
      os.ranks.(rank).Simnet.Proc_id.nid

  let my_tag os =
    (((os.my_rank + 1) land 0x7FFF) lsl 16)
    lor (node_inc os os.my_rank land 0xFFFF)

  (* A tag is stale when its holder's node is down, or alive in a newer
     incarnation than the one baked into the tag — either way the process
     that took the lock no longer exists. *)
  let holder_stale os tag =
    let r = (tag lsr 16) - 1 in
    if r < 0 || r >= Array.length os.ranks then true
    else
      Hashtbl.mem os.dead os.ranks.(r).Simnet.Proc_id.nid
      || node_inc os r land 0xFFFF <> tag land 0xFFFF

  let create os ~size =
    if size <= 0 then invalid_arg "Onesided.Win.create: size must be positive";
    let sym = alloc os (data_base + size) in
    {
      w_os = os;
      w_sym = sym;
      w_size = size;
      w_held = Hashtbl.create 4;
      w_freed = false;
    }

  let check_live w = if w.w_freed then invalid_arg "Onesided.Win: window freed"
  let size w = w.w_size

  let local_data w =
    check_live w;
    Bytes.sub (region_bytes w.w_os w.w_sym) data_base w.w_size

  let check_range w ~op ~offset ~len =
    if offset < 0 || len < 0 || offset + len > w.w_size then
      invalid_arg (Printf.sprintf "Onesided.Win.%s: outside the window" op)

  let check_word w ~op ~offset =
    check_range w ~op ~offset ~len:P.Wire.atomic_word_size;
    if offset mod P.Wire.atomic_word_size <> 0 then
      invalid_arg
        (Printf.sprintf "Onesided.Win.%s: offset not 8-byte aligned" op)

  let cas_lock os sym ~rank ~expected ~desired =
    atomic_fetch os sym ~pe:rank ~offset:lock_pos ~aop:P.Wire.Cas
      ~operand:desired ~compare:expected

  let add_lock os sym ~rank delta =
    atomic_fetch os sym ~pe:rank ~offset:lock_pos ~aop:P.Wire.Fetch_add
      ~operand:delta ~compare:0L

  let backoff os k =
    let ns = min (200 * (1 lsl min k 8)) 51_200 in
    Scheduler.delay (P.Ni.sched os.os_ni) (Time_ns.ns ns)

  let lock w ~rank kind =
    check_live w;
    let os = w.w_os in
    check_pe os rank;
    if Hashtbl.mem w.w_held rank then
      invalid_arg "Onesided.Win.lock: already holding a lock on this rank";
    let sched = P.Ni.sched os.os_ni in
    let start = Time_ns.to_us (Scheduler.now sched) in
    let retries = ref 0 in
    (match kind with
    | Shared ->
      let rec acquire () =
        let old = add_lock os w.w_sym ~rank 1L in
        if tag_of old = 0 then ()
        else begin
          (* An exclusive holder is in: take our optimistic increment
             back, fence the holder if it is dead, and retry. Once the
             -1 lands the word's shared count is back to [shared_of old]
             (the pre-increment fetch), so that is what the fence must
             expect; other waiters mid-dance make the CAS miss, and the
             retry loop fences again with a fresh read. *)
          ignore (add_lock os w.w_sym ~rank (-1L));
          let tag = tag_of old in
          if holder_stale os tag then
            ignore
              (cas_lock os w.w_sym ~rank
                 ~expected:(pack ~tag ~shared:(shared_of old))
                 ~desired:(pack ~tag:0 ~shared:(shared_of old)));
          incr retries;
          backoff os !retries;
          acquire ()
        end
      in
      acquire ()
    | Exclusive ->
      let desired = pack ~tag:(my_tag os) ~shared:0 in
      let rec acquire () =
        let old = cas_lock os w.w_sym ~rank ~expected:0L ~desired in
        if Int64.equal old 0L then ()
        else begin
          let tag = tag_of old in
          if tag <> 0 && holder_stale os tag then
            (* The exclusive holder died: clear its tag (keeping any
               shared count) so the word can be won on a later round. *)
            ignore
              (cas_lock os w.w_sym ~rank ~expected:old
                 ~desired:(pack ~tag:0 ~shared:(shared_of old)));
          incr retries;
          backoff os !retries;
          acquire ()
        end
      in
      acquire ());
    Hashtbl.replace w.w_held rank kind;
    Metrics.incr os.m.m_lock_acquired;
    Metrics.add os.m.m_lock_retries !retries;
    Metrics.observe os.m.m_lock_wait
      (Time_ns.to_us (Scheduler.now sched) -. start)

  let unlock w ~rank =
    check_live w;
    let os = w.w_os in
    match Hashtbl.find_opt w.w_held rank with
    | None -> invalid_arg "Onesided.Win.unlock: not holding a lock"
    | Some Shared ->
      Hashtbl.remove w.w_held rank;
      ignore (add_lock os w.w_sym ~rank (-1L))
    | Some Exclusive ->
      Hashtbl.remove w.w_held rank;
      (* Subtract the tag instead of CASing against (tag, shared=0): a
         shared waiter's optimistic +1 can be in flight across a full
         RTT, and a CAS landing on (tag, 1) would fail silently, leaving
         the word tagged by a live holder forever. The subtraction
         clears exactly our tag bits, preserves any transient shared
         count, and cannot fail. *)
      ignore
        (add_lock os w.w_sym ~rank
           (Int64.neg (Int64.shift_left (Int64.of_int (my_tag os)) 32)))

  let lock_all w =
    for rank = 0 to Array.length w.w_os.ranks - 1 do
      lock w ~rank Shared
    done

  let unlock_all w =
    for rank = 0 to Array.length w.w_os.ranks - 1 do
      unlock w ~rank
    done

  let put w ~rank ~offset data =
    check_live w;
    check_range w ~op:"put" ~offset ~len:(Bytes.length data);
    put w.w_os w.w_sym ~pe:rank ~offset:(data_base + offset) data

  let get w ~rank ~offset ~len =
    check_live w;
    check_range w ~op:"get" ~offset ~len;
    get w.w_os w.w_sym ~pe:rank ~offset:(data_base + offset) ~len

  let accumulate w ~rank ~offset delta =
    check_live w;
    check_word w ~op:"accumulate" ~offset;
    Metrics.incr w.w_os.m.m_accumulate;
    ignore
      (atomic_post w.w_os w.w_sym ~pe:rank ~offset:(data_base + offset)
         ~aop:P.Wire.Fetch_add ~operand:delta ~compare:0L ~forget:true)

  let fetch_and_add w ~rank ~offset delta =
    check_live w;
    check_word w ~op:"fetch_and_add" ~offset;
    fetch_and_add w.w_os w.w_sym ~pe:rank ~offset:(data_base + offset)
      delta

  let compare_and_swap w ~rank ~offset ~expected ~desired =
    check_live w;
    check_word w ~op:"compare_and_swap" ~offset;
    compare_and_swap w.w_os w.w_sym ~pe:rank ~offset:(data_base + offset) ~expected
      ~desired

  let flush w ~rank =
    check_live w;
    check_pe w.w_os rank;
    flush_to w.w_os ~pe:rank

  let flush_all w =
    check_live w;
    Metrics.incr w.w_os.m.m_flush;
    quiet w.w_os

  let quiet w = flush_all w

  let free w =
    check_live w;
    quiet w;
    w.w_freed <- true;
    free_region w.w_os w.w_sym
end

let win_create = Win.create
let win_free = Win.free
