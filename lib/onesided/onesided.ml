module P = Portals

type sym = int

type region = { r_id : int; r_buffer : bytes }

type t = {
  os_ni : P.Ni.t;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  portal_index : int;
  rx_eqh : P.Handle.eq;
  rx_eqq : P.Event.Queue.t; (* incoming one-sided ops on my regions *)
  tx_eqh : P.Handle.eq;
  tx_eqq : P.Event.Queue.t; (* completions of my puts/gets *)
  mutable regions : region list;
  mutable next_region : int;
  mutable outstanding : int; (* puts awaiting acknowledgment *)
  mutable next_op : int;
  completed_gets : (int, int) Hashtbl.t; (* op id -> mlength *)
}

let ok_exn = P.Errors.ok_exn

let create ni ~ranks ~rank ?(portal_index = 7) () =
  if rank < 0 || rank >= Array.length ranks then
    invalid_arg "Onesided.create: rank out of range";
  let rx_eqh = ok_exn ~op:"rx eq_alloc" (P.Ni.eq_alloc ni ~capacity:4096) in
  let tx_eqh = ok_exn ~op:"tx eq_alloc" (P.Ni.eq_alloc ni ~capacity:4096) in
  {
    os_ni = ni;
    ranks;
    my_rank = rank;
    portal_index;
    rx_eqh;
    rx_eqq = ok_exn ~op:"rx eq" (P.Ni.eq ni rx_eqh);
    tx_eqh;
    tx_eqq = ok_exn ~op:"tx eq" (P.Ni.eq ni tx_eqh);
    regions = [];
    next_region = 0;
    outstanding = 0;
    next_op = 0;
    completed_gets = Hashtbl.create 16;
  }

let rank t = t.my_rank
let size t = Array.length t.ranks

let region_options =
  {
    P.Md.op_put = true;
    op_get = true;
    manage_remote = true;
    truncate = false;
    ack_disable = false;
  }

let alloc t len =
  if len <= 0 then invalid_arg "Onesided.alloc: region must be non-empty";
  let r_id = t.next_region in
  t.next_region <- r_id + 1;
  (* Regions start zeroed so flag/counter idioms have a defined initial
     state (unlike Bytes.create, whose contents are arbitrary). *)
  let r_buffer = Bytes.make len '\x00' in
  let meh =
    ok_exn ~op:"region me_attach"
      (P.Ni.me_attach t.os_ni ~portal_index:t.portal_index
         ~match_id:P.Match_id.any
         ~match_bits:(P.Match_bits.of_int r_id)
         ~ignore_bits:P.Match_bits.zero ~unlink:P.Md.Retain ~pos:`Tail ())
  in
  let _mdh =
    ok_exn ~op:"region md_attach"
      (P.Ni.md_attach t.os_ni ~me:meh
         (P.Ni.md_spec ~options:region_options ~threshold:P.Md.Infinite
            ~unlink:P.Md.Retain ~eq:t.rx_eqh ~user_ptr:r_id r_buffer))
  in
  t.regions <- { r_id; r_buffer } :: t.regions;
  r_id

let find_region t sym =
  match List.find_opt (fun r -> r.r_id = sym) t.regions with
  | Some r -> r
  | None -> invalid_arg "Onesided: unknown region"

let region_bytes t sym = (find_region t sym).r_buffer

let check_pe t pe =
  if pe < 0 || pe >= Array.length t.ranks then
    invalid_arg "Onesided: pe out of range"

let region_len t sym = Bytes.length (find_region t sym).r_buffer

(* Process one local completion event. *)
let handle_tx_event t (ev : P.Event.t) =
  match ev.P.Event.kind with
  | P.Event.Ack -> t.outstanding <- t.outstanding - 1
  | P.Event.Reply ->
    Hashtbl.replace t.completed_gets ev.P.Event.md_user_ptr ev.P.Event.mlength
  | P.Event.Sent | P.Event.Put | P.Event.Get -> ()

let drain_tx t =
  let rec go () =
    match P.Event.Queue.get t.tx_eqq with
    | None -> ()
    | Some ev ->
      handle_tx_event t ev;
      go ()
  in
  go ()

let put t sym ~pe ~offset data =
  check_pe t pe;
  if offset < 0 || offset + Bytes.length data > region_len t sym then
    invalid_arg "Onesided.put: outside the region";
  let op_id = t.next_op in
  t.next_op <- op_id + 1;
  (* Threshold 2: SENT then ACK; the descriptor self-cleans after the
     target confirms the deposit. *)
  let mdh =
    ok_exn ~op:"put md_bind"
      (P.Ni.md_bind t.os_ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 2) ~unlink:P.Md.Unlink
            ~eq:t.tx_eqh ~user_ptr:op_id data))
  in
  t.outstanding <- t.outstanding + 1;
  ok_exn ~op:"put"
    (P.Ni.put t.os_ni ~md:mdh ~ack:true
       (P.Ni.op ~target:t.ranks.(pe) ~portal_index:t.portal_index
          ~match_bits:(P.Match_bits.of_int sym) ~offset ()))

let quiet t =
  drain_tx t;
  while t.outstanding > 0 do
    handle_tx_event t (P.Event.Queue.wait t.tx_eqq);
    drain_tx t
  done

let outstanding_puts t =
  drain_tx t;
  t.outstanding

let get t sym ~pe ~offset ~len =
  check_pe t pe;
  if len < 0 || offset < 0 || offset + len > region_len t sym then
    invalid_arg "Onesided.get: outside the region";
  let op_id = t.next_op in
  t.next_op <- op_id + 1;
  let dest = Bytes.create len in
  let mdh =
    ok_exn ~op:"get md_bind"
      (P.Ni.md_bind t.os_ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink
            ~eq:t.tx_eqh ~user_ptr:op_id dest))
  in
  ok_exn ~op:"get"
    (P.Ni.get t.os_ni ~md:mdh
       (P.Ni.op ~target:t.ranks.(pe) ~portal_index:t.portal_index
          ~match_bits:(P.Match_bits.of_int sym) ~offset ()));
  drain_tx t;
  while not (Hashtbl.mem t.completed_gets op_id) do
    handle_tx_event t (P.Event.Queue.wait t.tx_eqq);
    drain_tx t
  done;
  Hashtbl.remove t.completed_gets op_id;
  dest

let wait_until t sym ~offset ~value =
  let buffer = region_bytes t sym in
  if offset < 0 || offset >= Bytes.length buffer then
    invalid_arg "Onesided.wait_until: outside the region";
  while Bytes.get buffer offset <> value do
    (* Any incoming one-sided operation wakes us to re-check. *)
    ignore (P.Event.Queue.wait t.rx_eqq)
  done

let barrier_value = '\x01'
