(** A simulated cluster node: host CPU plus network injection link.

    Compute-node architecture follows the paper's platforms: one
    application-visible host processor and a network interface with its own
    transmit pipeline. Multiple simulated processes may live on one node
    and share both.

    Nodes follow a crash-stop/restart failure model. A node starts up in
    incarnation 0; {!crash} takes it down (losing all volatile state) and
    {!restart} brings it back with the next monotonic incarnation number.
    The incarnation is stamped into wire headers so peers can fence traffic
    from a process's previous life (see [Portals.Ni]). Prefer
    [Fabric.crash]/[Fabric.restart], which also kill resident fibers, drop
    in-flight traffic and deregister the node's processes. *)

type t

val create : Sim_engine.Scheduler.t -> nid:Proc_id.nid -> profile:Profile.t -> t
(** A fresh node, up, in incarnation 0, with an idle CPU and link. *)

val nid : t -> Proc_id.nid
val profile : t -> Profile.t

val host_cpu : t -> Sim_engine.Cpu.t
(** The application-visible host processor; compute and host-side
    protocol costs ({!Profile.t} syscall/interrupt fields) occupy it. *)

val tx_link : t -> Link.t
(** The node's serialising transmit pipeline: concurrent sends from
    this node queue here before reaching the wire. *)

val sched : t -> Sim_engine.Scheduler.t

val is_up : t -> bool
(** Whether the node is currently running ([true] at creation). *)

val incarnation : t -> int
(** Monotonic incarnation number: 0 at creation, +1 per {!restart}. *)

val crashes : t -> int
(** Number of times this node has crashed (the crash epoch; bumps on
    {!crash}, not on {!restart}, so in-flight messages sent before a crash
    can be told apart even after the node is back up). *)

val crash : t -> unit
(** Mark the node down. Raises [Invalid_argument] if already down. *)

val restart : t -> unit
(** Bring a down node back up in a fresh incarnation. Raises
    [Invalid_argument] if the node is not down. *)
