(* One process-wide switch, not a per-fabric knob: the frame codecs
   (Portals Wire, the reliability shim's frames) are pure byte functions
   with no fabric in scope, and a run either models an adversarial wire
   everywhere or nowhere. The runtime flips it on whenever a fault model
   or partition schedule is configured. *)

let on = ref false
let set_enabled b = on := b
let is_enabled () = !on

let with_enabled b f =
  let prev = !on in
  on := b;
  Fun.protect ~finally:(fun () -> on := prev) f
