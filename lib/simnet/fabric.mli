(** The raw message fabric: connectionless delivery of byte strings
    between registered (nid, pid) endpoints.

    This is "the Myrinet" of the simulation. A send serialises on the
    sender's injection {!Link} (so bursts pipeline back-to-back), crosses
    the wire after the profile latency, and is handed to the handler
    registered for the destination process. Messages from one sender to
    one destination are never reordered by the wire itself — a property
    the Portals layer depends on (§2: "reliable, in-order delivery").

    By default the wire is perfect, matching the paper's assumption. A
    {!Fault} model ({!set_fault_model}) makes it lossy: messages may be
    dropped or duplicated after occupying the wire, exactly the regime
    Cplant's reliability protocol — reproduced by [lib/reliability] — was
    built for. On a faulty fabric the in-order/exactly-once guarantee
    holds only with that layer installed (see {!install_shim}).

    Messages to unregistered destinations are dropped and counted, as are
    messages discarded by the fault model (counted per (src, dst) pair in
    the metrics registry under ["fabric.drops_injected"]).

    {b Topology.} By default the fabric is fully connected — every pair
    of nodes owns a private wire, nothing contends, exactly the seed
    model. Passing [~topology] ({!Topology.kind}) replaces the wires
    with a hop graph of {e shared} links: each message follows the
    {!Router} path for its (src, dst) pair, store-and-forwarding across
    every link with FIFO queueing, so concurrent flows crossing the same
    link serialise. Per-link ["link.queue_depth"] / ["link.busy_ns"] /
    ["link.flows"] instruments land in the metrics registry, and an
    optional [~queue_limit] turns overload into congestion drops
    (["fabric.drops_congested"]) that the {!install_shim} reliability
    layer recovers exactly like wire loss. *)

type t

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  drops_unregistered : int;
  drops_injected : int;
      (** Total over every (src, dst) pair — derived from the per-pair
          registry counters. *)
  drops_congested : int;
      (** Messages refused by a hop link whose queue hit the fabric's
          [queue_limit]. Always 0 on the default full topology. *)
  drops_crashed : int;
      (** Messages lost to node failure: in flight when an endpoint
          crashed, addressed to a down node, or injected on behalf of a
          down node. *)
  drops_partitioned : int;
      (** Messages severed by a scheduled {!Fault.partition_event} cut. *)
  dups_injected : int;
  corrupts_injected : int;
      (** Frames delivered with fault-model bit damage (every per-hop
          corruption counts). *)
  delays_injected : int;  (** Messages given fault-model extra latency. *)
}

val create :
  ?topology:Topology.kind ->
  ?queue_limit:int ->
  Sim_engine.Scheduler.t ->
  profile:Profile.t ->
  nodes:int ->
  t
(** [create sched ~profile ~nodes] is a fabric of [nodes] identical nodes
    numbered [0 .. nodes-1].

    [topology] (default {!Topology.Full}) selects the interconnect
    shape; [queue_limit] (default unbounded) caps each shared hop
    link's outstanding-transmission queue, beyond which messages are
    congestion-dropped. Raises [Invalid_argument] if the topology
    cannot host [nodes] (see {!Topology.build}). *)

val sched : t -> Sim_engine.Scheduler.t
val profile : t -> Profile.t

val topology : t -> Topology.t
(** The hop graph this fabric routes over. *)

val hop_link : t -> int -> Link.t
(** The shared link for a {!Topology} link id. Raises
    [Invalid_argument] out of range (in particular, always, on the full
    topology, whose link table is empty). *)

val peak_link_queue_depth : t -> int
(** Highest queue depth any hop link reached so far — the scalar the
    congestion experiments report. 0 on the full topology. *)

val route : t -> src:Proc_id.nid -> dst:Proc_id.nid -> int array
(** The (cached) {!Router} hop path a message from [src] to [dst]
    follows; empty on the full topology and for node-local traffic. *)

val node_count : t -> int

val node : t -> Proc_id.nid -> Node.t
(** Raises [Invalid_argument] for an out-of-range nid. *)

val register : t -> Proc_id.t -> (src:Proc_id.t -> bytes -> unit) -> unit
(** Attach the receive handler for a process. Raises [Invalid_argument] if
    the process is already registered. The handler runs at wire-arrival
    time; receive-path processing costs are the caller's concern. *)

val unregister : t -> Proc_id.t -> unit
val is_registered : t -> Proc_id.t -> bool

val endpoint_live : t -> Proc_id.t -> bool
(** Conservative liveness: [false] only when {e this} replica is the
    authority for the process's node and no handler is registered there.
    Equals {!is_registered} on a sequential fabric; on a shard it
    answers [true] for remotely-owned processes, whose handler tables
    live on the owning shard. Fail-fast guards (e.g. the RTS/CTS
    rendezvous check) must use this rather than {!is_registered}, which
    only sees local registrations. *)

val send : t -> src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit
(** Inject a message. Returns immediately; delivery happens via scheduled
    events. The payload is not copied — callers must not mutate it after
    sending (simulated NICs DMA from live buffers; Portals builds a fresh
    wire image per message). With a shim installed, the message passes
    through the shim's tx interceptor first. *)

(** {1 Crash-stop node failures}

    [crash] implements the crash-stop model: the node loses all volatile
    state instantly. Its processes are deregistered from the fabric, its
    resident fibers (those spawned with [~domain:nid]) are killed via
    {!Sim_engine.Scheduler.kill_domain}, messages it had in flight — in
    either direction — are dropped (counted in [drops_crashed] /
    ["fabric.drops_crashed"]), and anything later injected on its behalf
    is fenced. [restart] brings the node back with the next incarnation
    number; nothing re-registers automatically — the application (or
    [Runtime]) must recreate its endpoints, as a rebooted Cplant node
    would. *)

val crash : t -> Proc_id.nid -> unit
(** Crash-stop a node. Raises [Invalid_argument] if it is already down or
    the nid is out of range. *)

val restart : t -> Proc_id.nid -> unit
(** Restart a crashed node in a fresh incarnation. Raises
    [Invalid_argument] if the node is not down. *)

val is_node_up : t -> Proc_id.nid -> bool
val incarnation : t -> Proc_id.nid -> int

val on_crash : t -> (Proc_id.nid -> unit) -> unit
(** Register a callback run (in registration order) after a node has been
    crash-stopped — processes already deregistered, fibers already
    killed. Layers with per-peer state (reliability, MPI endpoints)
    subscribe to observe failures promptly. *)

val on_restart : t -> (Proc_id.nid -> unit) -> unit
(** Same, run after a node restarts (incarnation already bumped). *)

val apply_crash_schedule : t -> Fault.crash_schedule -> unit
(** Schedule every kill/revive of a {!Fault.crash_schedule} against this
    fabric. Raises [Invalid_argument] if a victim nid is out of range;
    times must not be in the past. *)

(** {1 Faults} *)

val set_fault_model : t -> Fault.t option -> unit
(** Install (or clear) the fault model consulted once per message at send
    time. Dropped messages still occupy the wire; duplicated messages are
    delivered twice back-to-back; corrupted messages land as a mutated
    copy ({!Fault.mutate}) — and on a multi-hop topology every hop after
    the first re-samples a corrupting model, so long routes take more
    damage; delayed messages land late, with each (src, dst) pair's
    send order preserved unless the decision said [reorder]. *)

val fault_model : t -> Fault.t option

val apply_partition_schedule : t -> Fault.partition_schedule -> unit
(** Schedule network cuts (validated again via
    {!Fault.partition_schedule}). While a cut is active, traffic across
    it is lost in flight and counted in [drops_partitioned] /
    ["fabric.drops_partitioned"]; the severed nodes themselves stay up.
    Cumulative with previously applied schedules. Raises
    [Invalid_argument] on a malformed schedule or an out-of-range nid. *)

val partition_schedule : t -> Fault.partition_schedule
(** Every cut applied so far (healed or not). *)

val has_partitions : t -> bool

val partitioned_now : t -> src:Proc_id.nid -> dst:Proc_id.nid -> bool
(** Whether src → dst traffic is severed at the current simulated time —
    the query [Runtime.Liveness] uses to tell a partitioned-but-alive
    peer from a crashed one. *)

val set_fault_injector :
  t -> (src:Proc_id.t -> dst:Proc_id.t -> len:int -> bool) option -> unit
(** Legacy boolean interface: with [Some f], each message for which [f]
    returns true is dropped. Implemented as a {!Fault.custom} model;
    equivalent to {!set_fault_model}. *)

(** {1 Reliability shim}

    A shim intercepts the fabric at exactly the wire boundary: every
    {!send} is diverted to [shim_tx] (which frames the payload and calls
    {!send_raw}), and every arriving message is diverted to [shim_rx]
    (which decodes, runs its protocol, and hands accepted payloads up via
    {!deliver}). Transports built over the fabric — and everything above
    them — are oblivious: they keep calling {!send} and {!register}. This
    mirrors Cplant, where the reliability protocol lived below the Portals
    modules inside the message-passing substrate. *)

type shim = {
  shim_tx : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
  shim_rx : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
}

val install_shim : t -> shim -> unit
(** Raises [Invalid_argument] if a shim is already installed. *)

val has_shim : t -> bool

val send_raw : t -> src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit
(** The raw wire path: serialise on the sender's link, apply the fault
    model, schedule arrival. Bypasses [shim_tx] (shims use this to emit
    their frames); arriving raw messages still pass through [shim_rx]. *)

val deliver : t -> src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit
(** Hand a payload to [dst]'s registered handler at the current simulated
    time, counting it delivered (or an unregistered drop). Shims call this
    for each message they accept. *)

val stats : t -> stats

(** {1 Parallel sharding}

    In a parallel run ([Runtime] with [--domains N]) each shard holds a
    full fabric instance over its own scheduler: nodes it owns are
    authoritative (handlers, fibers, links), the rest are shadow replicas
    whose crash/partition state is kept in lockstep by replicating the
    schedules to every shard. A message whose next step belongs to
    another shard leaves as an opaque {!remote} value — plain data, every
    stochastic choice already resolved — posted through the hook
    installed by {!set_par} and re-entered on the owning shard via
    {!receive_remote}. *)

type remote
(** One cross-shard fabric message (a landing or a hop continuation).
    Opaque: the runtime only shuttles these between shards. *)

val set_par :
  t ->
  self:int ->
  owner:(int -> int) ->
  post:(dst_shard:int -> time:Sim_engine.Time_ns.t -> remote -> unit) ->
  unit
(** Mark this fabric as shard [self]; [owner] maps each topology vertex
    (compute node or switch) to its owning shard, and [post] forwards a
    {!remote} for delivery at [time] on [dst_shard]. Raises
    [Invalid_argument] if already sharded. *)

val shard_self : t -> int
(** This fabric's shard id; 0 in sequential mode. *)

val receive_remote : t -> time:Sim_engine.Time_ns.t -> remote -> unit
(** Schedule a posted {!remote} for execution at [time] on this shard's
    scheduler. Called (in deterministic drain order) by the shard
    runtime's deliver callback. *)
