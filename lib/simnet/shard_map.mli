(** Node-to-shard partitioning and the conservative lookahead bound.

    The parallel engine splits compute nodes into contiguous, balanced
    blocks of node ids — with row-major torus numbering each shard is a
    stripe of rows, so shard-crossing links are exactly the stripe
    boundaries. Switch vertices of indirect topologies are assigned
    deterministically ([vertex mod nodes]'s owner).

    The {e lookahead} is the minimum latency of any cut link (profile
    wire latency on the full topology): one shard can only affect
    another after at least one cut-link crossing, so every shard may
    process a [lookahead]-wide time window without communication. *)

type t

val build : Topology.t -> profile:Profile.t -> shards:int -> t
(** Raises [Invalid_argument] if [shards < 1], if there are more shards
    than compute nodes, or if a zero-latency cut link would make the
    window width zero. *)

val shards : t -> int
val lookahead : t -> Sim_engine.Time_ns.t

val owner : t -> int -> int
(** [owner t v] is the shard owning vertex [v] (compute node or switch).
    Raises [Invalid_argument] out of range. *)

val node_owner : nodes:int -> shards:int -> int -> int
(** The pure block mapping, usable without building a topology. *)

val nodes_of : t -> int -> Proc_id.nid list
(** Compute nodes owned by a shard, ascending. *)

val cut_links : t -> Topology.t -> int list
(** Link ids whose endpoints live on different shards, ascending. *)
