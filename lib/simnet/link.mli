(** A serialising transmission resource.

    Models the injection side of a network link (or any single-server
    pipeline stage such as a DMA engine or a memcpy unit): work items
    occupy the resource back-to-back, so a burst of messages serialises
    while idle periods are skipped.

    Two usage styles coexist:

    {ul
    {- {!occupy} — the seed interface. The caller computes the duration
       (e.g. from a {!Profile}) and schedules its own follow-up event at
       the returned completion time. Used by the per-node injection
       links, receive engines and kernel copy pipelines.}
    {- {!transmit} — the topology interface. The link carries its own
       [bandwidth] and propagation [latency]; concurrent flows FIFO-queue
       behind each other, queue depth and flow counts are tracked, and a
       [queue_limit] turns overload into congestion drops (fed back to
       the {!Fabric} drop accounting, and recovered from by
       [lib/reliability] exactly like wire loss). Used by the shared hop
       links a {!Topology} introduces.}} *)

type t

type congestion = {
  cong_depth : int;  (** Queue depth at the moment of the drop. *)
  cong_bytes : int;  (** Size of the refused transmission. *)
}
(** Passed to the hook installed with {!on_congestion}. *)

val create :
  ?name:string ->
  ?bandwidth:float ->
  ?latency:Sim_engine.Time_ns.t ->
  ?queue_limit:int ->
  ?tracked:bool ->
  Sim_engine.Scheduler.t ->
  t
(** [create sched] registers ["link.busy_us"] and ["link.utilization"]
    probes labelled [("link", name)] in the scheduler's metrics registry.

    [bandwidth] (bytes/s) and [latency] (propagation delay, default 0)
    are used by {!transmit}; [queue_limit] bounds the number of
    simultaneously outstanding transmissions (the one on the wire plus
    those queued behind it) before further traffic is dropped — [None]
    (default) queues without bound, i.e. pure backpressure.

    [tracked] (default false; topology hop links set it) additionally
    registers ["link.queue_depth"] (peak outstanding transmissions),
    ["link.flows"] (peak concurrent distinct flows) and ["link.busy_ns"]
    probes, and makes {!transmit} maintain the underlying counts — the
    bookkeeping costs one scheduler event per transmission, which the
    seed's private-wire hot paths must not pay. *)

val occupy : t -> Sim_engine.Time_ns.t -> Sim_engine.Time_ns.t
(** [occupy t d] reserves the resource for duration [d] starting at the
    first instant it is free (now, or the end of previously queued work)
    and returns the absolute completion time. Non-blocking: callers
    schedule follow-up events at the returned time. *)

val transmit :
  t ->
  ?flow:int ->
  bytes:int ->
  unit ->
  [ `Accepted of Sim_engine.Time_ns.t | `Dropped ]
(** [transmit t ~flow ~bytes ()] offers a [bytes]-long store-and-forward
    transmission to the link. If accepted, it occupies the link for
    [bytes / bandwidth] behind everything already queued and the result
    is the absolute time the message has {e arrived at the far end}
    (completion plus [latency]); the caller schedules the next hop (or
    delivery) at that instant. [`Dropped] means the queue limit was hit:
    the message is lost here, as a congested store-and-forward switch
    with full buffers would lose it. [flow] identifies the (src, dst)
    stream for the concurrent-flow statistics of tracked links.

    Raises [Invalid_argument] if the link has no [bandwidth]. *)

val on_congestion : t -> (congestion -> unit) -> unit
(** Install a hook run on every congestion drop (after the drop counter
    is bumped). The fabric uses it for drop accounting; tests and
    backpressure schemes can observe overload pointwise. At most one
    hook; installing replaces the previous one. *)

val name : t -> string

val free_at : t -> Sim_engine.Time_ns.t
(** The instant the resource next becomes free. *)

val busy_time : t -> Sim_engine.Time_ns.t
(** Total time the resource has been occupied (utilisation numerator). *)

val queue_depth : t -> int
(** Outstanding transmissions right now (tracked links only; 0
    otherwise). *)

val peak_queue_depth : t -> int
(** High-water mark of {!queue_depth} over the run. *)

val peak_flows : t -> int
(** High-water mark of concurrent distinct flows (tracked links only). *)

val congestion_drops : t -> int
(** Transmissions refused because the queue limit was reached. *)
