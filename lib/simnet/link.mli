(** A serialising transmission resource.

    Models the injection side of a network link (or any single-server
    pipeline stage such as a DMA engine or a memcpy unit): work items
    occupy the resource back-to-back, so a burst of messages serialises
    while idle periods are skipped. *)

type t

val create : ?name:string -> Sim_engine.Scheduler.t -> t
(** Registers ["link.busy_us"] and ["link.utilization"] probes labelled
    [("link", name)] in the scheduler's metrics registry. *)

val occupy : t -> Sim_engine.Time_ns.t -> Sim_engine.Time_ns.t
(** [occupy t d] reserves the resource for duration [d] starting at the
    first instant it is free (now, or the end of previously queued work)
    and returns the absolute completion time. Non-blocking: callers
    schedule follow-up events at the returned time. *)

val free_at : t -> Sim_engine.Time_ns.t
(** The instant the resource next becomes free. *)

val busy_time : t -> Sim_engine.Time_ns.t
(** Total time the resource has been occupied (utilisation numerator). *)
