(** Interconnect topologies: the shape of the wires.

    The seed fabric modelled a {e fully-connected} machine — every node
    owns a private point-to-point wire to every other node, so nothing
    ever contends. Real machines of the paper's era were nothing like
    that: Cplant was a 1792-node mesh of Myrinet switches, ASCI Red a
    38×32×2 torus. On such fabrics a message crosses several {e shared}
    links, and independent flows queue behind each other — the regime the
    congestion experiments ({!Experiments.Congestion}) measure.

    A topology is purely structural: a set of vertices (compute nodes
    first, then internal switches for indirect topologies) and a table of
    directed links between adjacent vertices. {!Router} maps each
    (src, dst) node pair onto a hop path over those links, and
    {!Fabric} turns each link into a serialising {!Link} with the
    profile's bandwidth and per-hop latency. *)

type kind =
  | Full  (** Private wire per (src, dst) pair — the seed model. *)
  | Ring  (** 1-D bidirectional ring: node [i] wires to [i ± 1 mod n]. *)
  | Torus2d of int * int
      (** [Torus2d (a, b)]: [a × b] grid with wraparound in both
          dimensions, 4 neighbours per node (the Cplant / pMR mesh). *)
  | Torus3d of int * int * int
      (** [Torus3d (a, b, c)]: 3-D torus, 6 neighbours per node (the
          ASCI-Red / APENet shape). *)
  | Fat_tree of int
      (** [Fat_tree k]: k-ary fat-tree ([k] even): [k] pods of [k/2] edge
          and [k/2] aggregation switches, [(k/2)²] core switches,
          [k³/4] hosts. *)

type link = {
  link_id : int;  (** Dense index into the topology's link table. *)
  src_v : int;  (** Source vertex (node id, or switch vertex). *)
  dst_v : int;  (** Destination vertex. *)
}
(** One directed link of the hop graph. *)

type t

val build : kind -> nodes:int -> t
(** [build kind ~nodes] is the hop graph of [kind] over [nodes] compute
    nodes. Raises [Invalid_argument] if the shape cannot host exactly
    [nodes] (torus dimensions must multiply to [nodes], a fat-tree needs
    [nodes = k³/4], a ring needs at least 2 nodes). *)

val kind : t -> kind
val nodes : t -> int

val vertex_count : t -> int
(** Compute nodes plus internal switch vertices. Vertices
    [0 .. nodes-1] are the compute nodes; the rest are switches. *)

val link_count : t -> int

val link : t -> int -> link
(** The link with a given [link_id]. Raises [Invalid_argument] if out of
    range. *)

val find_link : t -> src_v:int -> dst_v:int -> int option
(** The id of the directed link between two adjacent vertices, if any. *)

val neighbors : t -> int -> int list
(** Adjacent vertices of a vertex, in deterministic (construction)
    order. For [Full] this is every other node. *)

val vertex_name : t -> int -> string
(** ["node3"] for compute nodes, ["sw5"] for switches — used to label
    per-link metrics. *)

val link_name : t -> int -> string
(** E.g. ["node0->node1"]; the value of the [("link", _)] metric label
    of the corresponding fabric {!Link}. *)

val dims : t -> int list
(** The dimension sizes of a grid-shaped topology: [[n]] for a ring,
    [[a; b]] for a 2-D torus, [[a; b; c]] for a 3-D torus. Empty for
    [Full] and [Fat_tree] — callers wanting a grid decomposition (e.g.
    [examples/halo_exchange.ml]) should test for emptiness. *)

val coords : t -> int -> int list
(** Grid coordinates of a node under {!dims} (row-major; empty when
    {!dims} is empty). *)

val of_coords : t -> int list -> int
(** Inverse of {!coords}. *)

val of_spec : nodes:int -> string -> kind
(** Parse a CLI topology spec: ["full"], ["ring"], ["torus2d\[:AxB\]"],
    ["torus3d\[:AxBxC\]"], ["fattree\[:K\]"]. Without explicit
    dimensions the shape is fitted to [nodes] (most-square
    factorisation for tori, [k = ∛(4·nodes)] for fat-trees). Raises
    [Invalid_argument] on syntax errors or shapes that cannot host
    [nodes]. *)

val describe : kind -> string
(** Short human-readable form, e.g. ["torus2d:4x4"]; parseable back by
    {!of_spec}. *)

val pp : Format.formatter -> t -> unit
