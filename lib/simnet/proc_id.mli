(** Process addressing.

    Portals is connectionless: a peer is named by a (node id, process id)
    pair, never by a connection. Node ids identify a physical node on the
    fabric; process ids distinguish the processes sharing that node (the
    Paragon/ASCI-Red heritage of multiple communicating processes per
    node, §2 of the paper). *)

type nid = int
(** Node identifier. *)

type pid = int
(** Process identifier, unique within a node. *)

type t = { nid : nid; pid : pid }
(** A fabric-wide process address. *)

val make : nid:nid -> pid:pid -> t
(** [make ~nid ~pid] is the address of process [pid] on node [nid].
    Raises [Invalid_argument] on negative components. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: by node id, then process id. *)

val hash : t -> int
(** Hash consistent with {!equal}, for [Hashtbl]-keyed routing tables. *)

val pp : Format.formatter -> t -> unit
(** Prints ["nid:pid"], e.g. ["3:0"]. *)

val to_string : t -> string
(** {!pp} as a string. *)
