open Sim_engine

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  drops_unregistered : int;
  drops_injected : int;
  drops_congested : int;
  drops_crashed : int;
  drops_partitioned : int;
  dups_injected : int;
  corrupts_injected : int;
  delays_injected : int;
}

type shim = {
  shim_tx : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
  shim_rx : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
}

type handler = src:Proc_id.t -> bytes -> unit

(* Cross-shard fabric traffic as plain data. The sending shard resolves
   every stochastic choice — fault decision, delay, partition cut, crash
   epochs — before the message leaves its domain, so the receiving shard
   only executes consequences against its own replica state. Closures
   must not cross domains: they would capture the wrong shard's fabric. *)
type remote =
  | R_land of {
      rl_src : Proc_id.t;
      rl_dst : Proc_id.t;
      rl_payload : bytes;
      rl_decision : Fault.decision;
      rl_cut : bool;
      rl_src_epoch : int;
      rl_dst_epoch : int;
    }
  | R_hop of {
      rh_src : Proc_id.t;
      rh_dst : Proc_id.t;
      rh_payload : bytes;
      rh_i : int; (* next hop index into the route path *)
      rh_seq : int; (* per-pair message sequence, keys hop corruption *)
      rh_wire_bytes : int; (* wire image of the {e original} frame *)
      rh_decision : Fault.decision;
      rh_cut : bool;
      rh_src_epoch : int;
      rh_dst_epoch : int;
      rh_delay_by : Time_ns.t;
      rh_clamp : bool; (* FIFO floor active, decided at send time *)
    }

type par = {
  par_self : int;
  par_owner : int array; (* vertex id -> shard *)
  par_post : dst_shard:int -> time:Time_ns.t -> remote -> unit;
}

type t = {
  fabric_sched : Scheduler.t;
  fabric_profile : Profile.t;
  topo : Topology.t;
  (* One serialising link per directed edge of the hop graph, indexed by
     [Topology.link_id]; empty for the fully-connected (seed) topology,
     which keeps the private-wire fast path. *)
  hop_links : Link.t array;
  (* (src nid * nodes + dst nid) -> the link-id path, computed on first
     use: routing is deterministic, so each pair is resolved once. *)
  routes : (int, int array) Hashtbl.t;
  nodes : Node.t array;
  (* Per-node handler slots indexed by pid — [handlers.(nid).(pid)].
     Delivery is the fabric's hottest operation, so the lookup is two
     array loads instead of a hash of the (nid, pid) record. The pid
     dimension grows on demand (procs-per-node is small, usually 1). *)
  handlers : handler option array array;
  mutable fault : Fault.t option;
  mutable shim : shim option;
  (* Scheduled cuts, consulted (deterministically, no PRNG) on every
     landing while non-empty. *)
  mutable partitions : Fault.partition_schedule;
  (* Per-(src,dst) FIFO floor, active from the first non-reorder [Delay]
     decision on: a delayed message records its arrival and every later
     message on the pair lands no earlier, so jitter reorders across
     pairs but never within one. Inactive (and costing nothing) until a
     delay fault actually fires. *)
  mutable fifo_clamp : bool;
  pair_arrivals : (Proc_id.t * Proc_id.t, Time_ns.t ref) Hashtbl.t;
  (* Per-(src,dst) message sequence, maintained only when the fault model
     has a keyed per-hop sampler; keys its draws. *)
  send_seqs : (Proc_id.t * Proc_id.t, int ref) Hashtbl.t;
  (* Parallel-engine hooks; None in sequential mode. In parallel mode
     this fabric instance is one shard's replica of the world: local
     nodes are authoritative, remote nodes are shadows kept in sync by
     the replicated crash/partition schedules. *)
  mutable par : par option;
  (* Fault-family probes are registered on first use so a fault-free
     run's metric snapshot stays exactly what it was before the
     corruption/delay/partition faults existed. *)
  mutable fault_probes_on : bool;
  mutable partition_probe_on : bool;
  sent : Stats.Counter.t;
  sent_bytes : Stats.Counter.t;
  delivered : Stats.Counter.t;
  drop_unregistered : Stats.Counter.t;
  drop_congested : Stats.Counter.t;
  drop_crashed : Stats.Counter.t;
  drop_partitioned : Stats.Counter.t;
  corrupt_injected : Stats.Counter.t;
  delay_injected : Stats.Counter.t;
  dup_injected : Stats.Counter.t;
  crash_count : Stats.Counter.t;
  restart_count : Stats.Counter.t;
  mutable crash_listeners : (Proc_id.nid -> unit) array;
  mutable restart_listeners : (Proc_id.nid -> unit) array;
  (* Injected drops are counted per (src, dst) pair in the registry;
     [stats] derives the total by summing these. The common pid-0/pid-0
     pair for each (src nid, dst nid) lives in a flat [nodes²] array;
     pairs involving a nonzero pid fall back to the table. *)
  drop_pairs_nid : Metrics.counter option array;
  drop_pairs_other : (Proc_id.t * Proc_id.t, Metrics.counter) Hashtbl.t;
}

let create ?(topology = Topology.Full) ?queue_limit sched ~profile ~nodes =
  if nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  let topo = Topology.build topology ~nodes in
  let hop_links =
    Array.init (Topology.link_count topo) (fun id ->
        Link.create
          ~name:(Topology.link_name topo id)
          ~bandwidth:profile.Profile.wire_bandwidth
          ~latency:profile.Profile.wire_latency ?queue_limit ~tracked:true
          sched)
  in
  let t =
    {
      fabric_sched = sched;
      fabric_profile = profile;
      topo;
      hop_links;
      routes = Hashtbl.create (if Array.length hop_links = 0 then 1 else 64);
      nodes = Array.init nodes (fun nid -> Node.create sched ~nid ~profile);
      handlers = Array.make nodes [||];
      fault = None;
      shim = None;
      partitions = [];
      fifo_clamp = false;
      pair_arrivals = Hashtbl.create 16;
      send_seqs = Hashtbl.create 16;
      par = None;
      fault_probes_on = false;
      partition_probe_on = false;
      sent = Stats.Counter.create ~name:"fabric.sent" ();
      sent_bytes = Stats.Counter.create ~name:"fabric.sent_bytes" ();
      delivered = Stats.Counter.create ~name:"fabric.delivered" ();
      drop_unregistered = Stats.Counter.create ~name:"fabric.drop_unregistered" ();
      drop_congested = Stats.Counter.create ~name:"fabric.drop_congested" ();
      drop_crashed = Stats.Counter.create ~name:"fabric.drop_crashed" ();
      drop_partitioned =
        Stats.Counter.create ~name:"fabric.drop_partitioned" ();
      corrupt_injected = Stats.Counter.create ~name:"fabric.corrupt_injected" ();
      delay_injected = Stats.Counter.create ~name:"fabric.delay_injected" ();
      dup_injected = Stats.Counter.create ~name:"fabric.dup_injected" ();
      crash_count = Stats.Counter.create ~name:"fabric.crashes" ();
      restart_count = Stats.Counter.create ~name:"fabric.restarts" ();
      crash_listeners = [||];
      restart_listeners = [||];
      drop_pairs_nid = Array.make (nodes * nodes) None;
      drop_pairs_other = Hashtbl.create 16;
    }
  in
  let m = Scheduler.metrics sched in
  let probe name f = Metrics.probe m name (fun () -> float_of_int (f ())) in
  probe "fabric.sent" (fun () -> Stats.Counter.value t.sent);
  probe "fabric.sent_bytes" (fun () -> Stats.Counter.value t.sent_bytes);
  probe "fabric.delivered" (fun () -> Stats.Counter.value t.delivered);
  probe "fabric.drops_unregistered" (fun () ->
      Stats.Counter.value t.drop_unregistered);
  (* Only a shared-link topology can congest; keep the seed topology's
     metric snapshot exactly as it was. *)
  if Array.length hop_links > 0 then
    probe "fabric.drops_congested" (fun () ->
        Stats.Counter.value t.drop_congested);
  probe "fabric.dups_injected" (fun () -> Stats.Counter.value t.dup_injected);
  probe "fabric.drops_crashed" (fun () -> Stats.Counter.value t.drop_crashed);
  probe "fabric.crashes" (fun () -> Stats.Counter.value t.crash_count);
  probe "fabric.restarts" (fun () -> Stats.Counter.value t.restart_count);
  t

let sched t = t.fabric_sched
let profile t = t.fabric_profile
let topology t = t.topo
let node_count t = Array.length t.nodes

let hop_link t id =
  if id < 0 || id >= Array.length t.hop_links then
    invalid_arg (Printf.sprintf "Fabric.hop_link: id %d out of range" id);
  t.hop_links.(id)

let peak_link_queue_depth t =
  Array.fold_left (fun acc l -> max acc (Link.peak_queue_depth l)) 0 t.hop_links

let route t ~src ~dst =
  let key = (src * Array.length t.nodes) + dst in
  match Hashtbl.find_opt t.routes key with
  | Some path -> path
  | None ->
    let path = Router.route t.topo ~src ~dst in
    Hashtbl.replace t.routes key path;
    path

let node t nid =
  if nid < 0 || nid >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Fabric.node: nid %d out of range" nid);
  t.nodes.(nid)

let find_handler t pid =
  let nid = pid.Proc_id.nid and p = pid.Proc_id.pid in
  if nid < 0 || nid >= Array.length t.handlers || p < 0 then None
  else
    let slots = t.handlers.(nid) in
    if p >= Array.length slots then None else slots.(p)

let register t pid handler =
  if find_handler t pid <> None then
    invalid_arg ("Fabric.register: already registered: " ^ Proc_id.to_string pid);
  ignore (node t pid.Proc_id.nid);
  let p = pid.Proc_id.pid in
  if p < 0 then
    invalid_arg ("Fabric.register: negative pid: " ^ Proc_id.to_string pid);
  let slots = t.handlers.(pid.Proc_id.nid) in
  let slots =
    if p < Array.length slots then slots
    else begin
      let grown = Array.make (max (p + 1) (2 * Array.length slots)) None in
      Array.blit slots 0 grown 0 (Array.length slots);
      t.handlers.(pid.Proc_id.nid) <- grown;
      grown
    end
  in
  slots.(p) <- Some handler

let unregister t pid =
  let nid = pid.Proc_id.nid and p = pid.Proc_id.pid in
  if nid >= 0 && nid < Array.length t.handlers && p >= 0 then begin
    let slots = t.handlers.(nid) in
    if p < Array.length slots then slots.(p) <- None
  end

let is_registered t pid = find_handler t pid <> None
let is_node_up t nid = Node.is_up (node t nid)
let incarnation t nid = Node.incarnation (node t nid)

let set_par t ~self ~owner ~post =
  if t.par <> None then invalid_arg "Fabric.set_par: already sharded";
  let vertices = max (Topology.vertex_count t.topo) (Array.length t.nodes) in
  t.par <- Some { par_self = self; par_owner = Array.init vertices owner; par_post = post }

let shard_self t = match t.par with None -> 0 | Some p -> p.par_self

(* Whether this fabric instance is the authority for [nid] — always, in
   sequential mode. Shadow replicas mirror crash/restart state but must
   not double-count it. *)
let owns t nid =
  match t.par with None -> true | Some p -> p.par_owner.(nid) = p.par_self

(* Conservative: a replica can only rule out an endpoint it is the
   authority for. Remote handler tables live on the owning shard. *)
let endpoint_live t pid = if owns t pid.Proc_id.nid then is_registered t pid else true

let append_listener arr f = Array.append arr [| f |]
let on_crash t f = t.crash_listeners <- append_listener t.crash_listeners f
let on_restart t f = t.restart_listeners <- append_listener t.restart_listeners f

(* In parallel mode this runs on {e every} shard at the same simulated
   time (the schedule is replicated), so each shard's replica of the
   victim flips state in lockstep; only the owner counts the event, and
   the kill/handler-clear parts are naturally no-ops on shadows (remote
   nodes have no fibers or handlers on this shard). Listeners fire on
   every shard: each shard's shims and monitors track all peers. *)
let crash t nid =
  let n = node t nid in
  Node.crash n;
  if owns t nid then Stats.Counter.incr t.crash_count;
  (* Volatile state dies with the node: its processes disappear from the
     fabric and its resident fibers are destroyed. *)
  Array.fill t.handlers.(nid) 0 (Array.length t.handlers.(nid)) None;
  ignore (Scheduler.kill_domain t.fabric_sched nid);
  Array.iter (fun f -> f nid) t.crash_listeners

let restart t nid =
  let n = node t nid in
  Node.restart n;
  if owns t nid then Stats.Counter.incr t.restart_count;
  Array.iter (fun f -> f nid) t.restart_listeners

let apply_crash_schedule t schedule =
  List.iter
    (fun ev ->
      ignore (node t ev.Fault.victim);
      Scheduler.at t.fabric_sched ev.Fault.down_at (fun () ->
          crash t ev.Fault.victim);
      Option.iter
        (fun up ->
          Scheduler.at t.fabric_sched up (fun () -> restart t ev.Fault.victim))
        ev.Fault.up_at)
    schedule

let ensure_fault_probes t =
  if not t.fault_probes_on then begin
    t.fault_probes_on <- true;
    let m = Scheduler.metrics t.fabric_sched in
    let probe name f = Metrics.probe m name (fun () -> float_of_int (f ())) in
    probe "fabric.corrupts_injected" (fun () ->
        Stats.Counter.value t.corrupt_injected);
    probe "fabric.delays_injected" (fun () ->
        Stats.Counter.value t.delay_injected)
  end

let set_fault_model t fault =
  if fault <> None then ensure_fault_probes t;
  t.fault <- fault

let fault_model t = t.fault

let apply_partition_schedule t schedule =
  let schedule = Fault.partition_schedule schedule in
  List.iter
    (fun nid ->
      if nid < 0 || nid >= Array.length t.nodes then
        invalid_arg
          (Printf.sprintf "Fabric.apply_partition_schedule: unknown nid %d" nid))
    (Fault.partition_nids schedule);
  if schedule <> [] && not t.partition_probe_on then begin
    t.partition_probe_on <- true;
    Metrics.probe
      (Scheduler.metrics t.fabric_sched)
      "fabric.drops_partitioned"
      (fun () -> float_of_int (Stats.Counter.value t.drop_partitioned))
  end;
  t.partitions <- t.partitions @ schedule

let partition_schedule t = t.partitions
let has_partitions t = t.partitions <> []

let partitioned_now t ~src ~dst =
  t.partitions <> []
  && Fault.cut_now t.partitions ~now:(Scheduler.now t.fabric_sched) ~src ~dst

let set_fault_injector t f =
  t.fault <-
    Option.map
      (fun f ->
        Fault.custom (fun ~now:_ ~src ~dst ~len ->
            if f ~src ~dst ~len then Fault.Drop else Fault.Deliver))
      f

let install_shim t shim =
  if t.shim <> None then
    invalid_arg "Fabric.install_shim: a shim is already installed";
  t.shim <- Some shim

let has_shim t = t.shim <> None

let make_drop_pair_counter t ~src ~dst =
  Metrics.counter
    (Scheduler.metrics t.fabric_sched)
    ~labels:[ ("src", Proc_id.to_string src); ("dst", Proc_id.to_string dst) ]
    "fabric.drops_injected"

let drop_pair_counter t ~src ~dst =
  if src.Proc_id.pid = 0 && dst.Proc_id.pid = 0 then begin
    let idx = (src.Proc_id.nid * Array.length t.nodes) + dst.Proc_id.nid in
    match t.drop_pairs_nid.(idx) with
    | Some c -> c
    | None ->
      let c = make_drop_pair_counter t ~src ~dst in
      t.drop_pairs_nid.(idx) <- Some c;
      c
  end
  else
    match Hashtbl.find_opt t.drop_pairs_other (src, dst) with
    | Some c -> c
    | None ->
      let c = make_drop_pair_counter t ~src ~dst in
      Hashtbl.replace t.drop_pairs_other (src, dst) c;
      c

let deliver t ~src ~dst payload =
  match find_handler t dst with
  | None -> Stats.Counter.incr t.drop_unregistered
  | Some handler ->
    Stats.Counter.incr t.delivered;
    handler ~src payload

let arrive t ~src ~dst payload =
  match t.shim with
  | Some shim -> shim.shim_rx ~src ~dst payload
  | None -> deliver t ~src ~dst payload

let mutate_counted t c payload =
  Stats.Counter.incr t.corrupt_injected;
  Fault.mutate c payload

(* On multi-hop routes the end-to-end fault sample covers the first hop;
   each later hop re-samples, honouring only [Corrupt] outcomes, so a
   long route accumulates more bit damage than a short one while
   loss/delay/duplication stay end-to-end properties. The re-sample is
   the model's {e keyed} sampler — a pure function of (pair, message
   sequence, hop index) — so a route crossing shard boundaries draws the
   same damage no matter which domain executes which hop. Models that
   cannot corrupt have no sampler and cost nothing here. *)
let per_hop_corrupt t ~src ~dst ~seq ~hop payload =
  match t.fault with
  | Some f -> (
    match Fault.hop_sample f with
    | Some sample -> (
      match sample ~src ~dst ~seq ~hop ~len:(Bytes.length payload) with
      | Some c -> mutate_counted t c payload
      | None -> payload)
    | None -> payload)
  | None -> payload

(* Per-pair send sequence, maintained only when keyed hop sampling needs
   it: the count is then a pure function of the pair's send history, so
   sequential and parallel runs agree on every key. *)
let next_send_seq t ~src ~dst =
  match t.fault with
  | Some f when Fault.hop_sample f <> None -> (
    match Hashtbl.find_opt t.send_seqs (src, dst) with
    | Some r ->
      let v = !r in
      r := v + 1;
      v
    | None ->
      Hashtbl.replace t.send_seqs (src, dst) (ref 1);
      0)
  | _ -> 0

let clamp_arrival t ~src ~dst arrival =
  match Hashtbl.find_opt t.pair_arrivals (src, dst) with
  | Some r ->
    let a = if Time_ns.compare arrival !r < 0 then !r else arrival in
    r := a;
    a
  | None ->
    Hashtbl.replace t.pair_arrivals (src, dst) (ref arrival);
    arrival

(* Landing: the message has reached its destination at the current
   simulated time; apply the decision resolved at send time. Runs on the
   destination's owner shard, so every land-side counter is incremented
   exactly once across the world. *)
let land_msg t ~src ~dst ~decision ~cut ~src_epoch ~dst_epoch payload =
  let sender = node t src.Proc_id.nid and receiver = node t dst.Proc_id.nid in
  if
    Node.crashes sender <> src_epoch
    || Node.crashes receiver <> dst_epoch
    || not (Node.is_up receiver)
  then Stats.Counter.incr t.drop_crashed
  else if cut then Stats.Counter.incr t.drop_partitioned
  else
    match decision with
    | Fault.Drop -> Metrics.incr (drop_pair_counter t ~src ~dst)
    | Fault.Deliver | Fault.Delay _ -> arrive t ~src ~dst payload
    | Fault.Corrupt c -> arrive t ~src ~dst (mutate_counted t c payload)
    | Fault.Duplicate ->
      Stats.Counter.incr t.dup_injected;
      arrive t ~src ~dst payload;
      arrive t ~src ~dst payload

(* Store-and-forward over the hop path: at each hop the message
   FIFO-queues on the shared link, occupies it for its full wire image,
   then propagates to the next vertex. A hop whose queue is over the
   limit drops the message — to the layers above (and to
   [lib/reliability]) this is indistinguishable from wire loss. Each hop
   executes on the shard owning the link's source vertex; advancing to a
   vertex owned elsewhere posts the remaining journey as plain data. *)
let rec hop_step t ~src ~dst ~seq ~i ~wire_bytes ~decision ~cut ~src_epoch
    ~dst_epoch ~delay_by ~clamp payload =
  let path = route t ~src:src.Proc_id.nid ~dst:dst.Proc_id.nid in
  if i >= Array.length path then begin
    let now = Scheduler.now t.fabric_sched in
    let arrival = Time_ns.add now delay_by in
    let arrival = if clamp then clamp_arrival t ~src ~dst arrival else arrival in
    if Time_ns.compare arrival now = 0 then
      land_msg t ~src ~dst ~decision ~cut ~src_epoch ~dst_epoch payload
    else
      Scheduler.at t.fabric_sched arrival (fun () ->
          land_msg t ~src ~dst ~decision ~cut ~src_epoch ~dst_epoch payload)
  end
  else begin
    let payload =
      if i = 0 then payload else per_hop_corrupt t ~src ~dst ~seq ~hop:i payload
    in
    let flow = (src.Proc_id.nid * Array.length t.nodes) + dst.Proc_id.nid in
    match Link.transmit t.hop_links.(path.(i)) ~flow ~bytes:wire_bytes () with
    | `Dropped -> Stats.Counter.incr t.drop_congested
    | `Accepted arrival -> (
      let next_v =
        if i + 1 >= Array.length path then dst.Proc_id.nid
        else (Topology.link t.topo path.(i + 1)).Topology.src_v
      in
      match t.par with
      | Some p when p.par_owner.(next_v) <> p.par_self ->
        p.par_post ~dst_shard:p.par_owner.(next_v) ~time:arrival
          (R_hop
             {
               rh_src = src;
               rh_dst = dst;
               rh_payload = payload;
               rh_i = i + 1;
               rh_seq = seq;
               rh_wire_bytes = wire_bytes;
               rh_decision = decision;
               rh_cut = cut;
               rh_src_epoch = src_epoch;
               rh_dst_epoch = dst_epoch;
               rh_delay_by = delay_by;
               rh_clamp = clamp;
             })
      | _ ->
        Scheduler.at t.fabric_sched arrival (fun () ->
            hop_step t ~src ~dst ~seq ~i:(i + 1) ~wire_bytes ~decision ~cut
              ~src_epoch ~dst_epoch ~delay_by ~clamp payload))
  end

let exec_remote t = function
  | R_land
      { rl_src; rl_dst; rl_payload; rl_decision; rl_cut; rl_src_epoch;
        rl_dst_epoch } ->
    land_msg t ~src:rl_src ~dst:rl_dst ~decision:rl_decision ~cut:rl_cut
      ~src_epoch:rl_src_epoch ~dst_epoch:rl_dst_epoch rl_payload
  | R_hop
      { rh_src; rh_dst; rh_payload; rh_i; rh_seq; rh_wire_bytes; rh_decision;
        rh_cut; rh_src_epoch; rh_dst_epoch; rh_delay_by; rh_clamp } ->
    hop_step t ~src:rh_src ~dst:rh_dst ~seq:rh_seq ~i:rh_i
      ~wire_bytes:rh_wire_bytes ~decision:rh_decision ~cut:rh_cut
      ~src_epoch:rh_src_epoch ~dst_epoch:rh_dst_epoch ~delay_by:rh_delay_by
      ~clamp:rh_clamp rh_payload

let receive_remote t ~time msg =
  Scheduler.at t.fabric_sched time (fun () -> exec_remote t msg)

let send_raw t ~src ~dst payload =
  let len = Bytes.length payload in
  let sender = node t src.Proc_id.nid in
  let receiver = node t dst.Proc_id.nid in
  if not (Node.is_up sender) then
    (* A dead node injects nothing; late scheduled callbacks acting on its
       behalf (retransmit timers, NIC engines) are silently fenced. *)
    Stats.Counter.incr t.drop_crashed
  else begin
    Stats.Counter.incr t.sent;
    Stats.Counter.add t.sent_bytes len;
    let decision =
      match t.fault with
      | None -> Fault.Deliver
      | Some f ->
        Fault.decide f ~now:(Scheduler.now t.fabric_sched) ~src ~dst ~len
    in
    (* A scheduled cut severs the pair outright — decided at send time
       (deterministic, no PRNG draw) but counted at landing like every
       other in-flight loss. *)
    let cut =
      t.partitions <> []
      && Fault.cut_now t.partitions
           ~now:(Scheduler.now t.fabric_sched)
           ~src:src.Proc_id.nid ~dst:dst.Proc_id.nid
    in
    let delay_by, delay_reorder =
      match decision with
      | Fault.Delay { by; reorder } ->
        Stats.Counter.incr t.delay_injected;
        if not reorder then t.fifo_clamp <- true;
        (by, reorder)
      | _ -> (Time_ns.zero, false)
    in
    (* The FIFO floor is decided at send time and rides with the message:
       a multi-hop landing may execute on another shard, whose own
       fifo_clamp flag only reflects traffic {e sent} from there. *)
    let clamp = t.fifo_clamp && not delay_reorder in
    (* Crash epochs captured at send time: if either end crashes while the
       message is in flight, it was sitting in a NIC pipeline that no
       longer exists, so it is lost even if the node is back up by
       arrival. The receiver's epoch reads this shard's replica, kept in
       lockstep by the replicated crash schedule. *)
    let src_epoch = Node.crashes sender and dst_epoch = Node.crashes receiver in
    let seq = next_send_seq t ~src ~dst in
    let path = route t ~src:src.Proc_id.nid ~dst:dst.Proc_id.nid in
    if Array.length path = 0 then begin
      (* Private-wire fast path: the seed model, kept bit-for-bit. Also
         taken for node-local traffic on every topology. *)
      let serialised =
        Link.occupy (Node.tx_link sender) (Profile.tx_time t.fabric_profile len)
      in
      let arrival =
        Time_ns.add
          (Time_ns.add serialised t.fabric_profile.Profile.wire_latency)
          delay_by
      in
      let arrival =
        if clamp then clamp_arrival t ~src ~dst arrival else arrival
      in
      match t.par with
      | Some p when p.par_owner.(dst.Proc_id.nid) <> p.par_self ->
        p.par_post ~dst_shard:p.par_owner.(dst.Proc_id.nid) ~time:arrival
          (R_land
             {
               rl_src = src;
               rl_dst = dst;
               rl_payload = payload;
               rl_decision = decision;
               rl_cut = cut;
               rl_src_epoch = src_epoch;
               rl_dst_epoch = dst_epoch;
             })
      | _ ->
        Scheduler.at t.fabric_sched arrival (fun () ->
            land_msg t ~src ~dst ~decision ~cut ~src_epoch ~dst_epoch payload)
    end
    else begin
      let wire_bytes = Profile.wire_bytes_of_len t.fabric_profile len in
      hop_step t ~src ~dst ~seq ~i:0 ~wire_bytes ~decision ~cut ~src_epoch
        ~dst_epoch ~delay_by ~clamp payload
    end
  end

let send t ~src ~dst payload =
  match t.shim with
  | Some shim -> shim.shim_tx ~src ~dst payload
  | None -> send_raw t ~src ~dst payload

let stats t =
  {
    messages_sent = Stats.Counter.value t.sent;
    bytes_sent = Stats.Counter.value t.sent_bytes;
    messages_delivered = Stats.Counter.value t.delivered;
    drops_unregistered = Stats.Counter.value t.drop_unregistered;
    drops_congested = Stats.Counter.value t.drop_congested;
    drops_crashed = Stats.Counter.value t.drop_crashed;
    drops_partitioned = Stats.Counter.value t.drop_partitioned;
    corrupts_injected = Stats.Counter.value t.corrupt_injected;
    delays_injected = Stats.Counter.value t.delay_injected;
    drops_injected =
      Array.fold_left
        (fun acc c ->
          match c with None -> acc | Some c -> acc + Metrics.counter_value c)
        (Hashtbl.fold
           (fun _ c acc -> acc + Metrics.counter_value c)
           t.drop_pairs_other 0)
        t.drop_pairs_nid;
    dups_injected = Stats.Counter.value t.dup_injected;
  }
