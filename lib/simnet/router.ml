let check_node topo what v =
  if v < 0 || v >= Topology.nodes topo then
    invalid_arg (Printf.sprintf "Router: %s node %d out of range" what v)

(* Dimension-order: walk the dimensions left to right, correcting each
   coordinate along the shorter way around before touching the next.
   Ties (offset exactly half the dimension) go the positive way. *)
let torus_path topo ~src ~dst =
  let ds = Topology.dims topo in
  let cur = Array.of_list (Topology.coords topo src) in
  let goal = Array.of_list (Topology.coords topo dst) in
  let path = ref [ src ] in
  List.iteri
    (fun i d ->
      let fwd = (goal.(i) - cur.(i) + d) mod d in
      let step = if fwd = 0 then 0 else if 2 * fwd <= d then 1 else -1 in
      while cur.(i) <> goal.(i) do
        cur.(i) <- (cur.(i) + step + d) mod d;
        path := Topology.of_coords topo (Array.to_list cur) :: !path
      done)
    ds;
  List.rev !path

(* Up/down: host -> edge [-> agg [-> core -> agg'] -> edge'] -> host.
   The agg/core choice hashes the (src, dst) pair so each pair is pinned
   to one path (FIFO order survives) while pairs spread over the tree. *)
let fat_tree_path topo ~src ~dst k =
  let n = Topology.nodes topo in
  let half = k / 2 in
  let edge p e = n + (p * half) + e in
  let agg p a = n + (k * half) + (p * half) + a in
  let core g c = n + (2 * k * half) + (g * half) + c in
  let pod h = h / (half * half) and epos h = h mod (half * half) / half in
  let sp = pod src and dp = pod dst in
  let se = epos src and de = epos dst in
  let spread = ((src * 7919) + dst) mod half in
  if sp = dp && se = de then [ src; edge sp se; dst ]
  else if sp = dp then [ src; edge sp se; agg sp spread; edge sp de; dst ]
  else
    [
      src; edge sp se; agg sp spread; core spread ((src + dst) mod half);
      agg dp spread; edge dp de; dst;
    ]

let path_vertices topo ~src ~dst =
  check_node topo "src" src;
  check_node topo "dst" dst;
  if src = dst then [ src ]
  else
    match Topology.kind topo with
    | Topology.Full -> [ src; dst ]
    | Topology.Ring | Topology.Torus2d _ | Topology.Torus3d _ ->
      torus_path topo ~src ~dst
    | Topology.Fat_tree k -> fat_tree_path topo ~src ~dst k

let route topo ~src ~dst =
  check_node topo "src" src;
  check_node topo "dst" dst;
  if src = dst || Topology.kind topo = Topology.Full then [||]
  else begin
    let vs = path_vertices topo ~src ~dst in
    let rec links = function
      | a :: (b :: _ as rest) -> (
        match Topology.find_link topo ~src_v:a ~dst_v:b with
        | Some id -> id :: links rest
        | None ->
          invalid_arg
            (Printf.sprintf "Router.route: no link %s->%s"
               (Topology.vertex_name topo a)
               (Topology.vertex_name topo b)))
      | [ _ ] | [] -> []
    in
    Array.of_list (links vs)
  end

let hop_count topo ~src ~dst = Array.length (route topo ~src ~dst)

let min_torus_hops topo ~src ~dst =
  match Topology.dims topo with
  | [] -> invalid_arg "Router.min_torus_hops: not a grid topology"
  | _ ->
    check_node topo "src" src;
    check_node topo "dst" dst;
    List.fold_left2
      (fun acc (a, b) d ->
        let fwd = (b - a + d) mod d in
        acc + min fwd (d - fwd))
      0
      (List.combine (Topology.coords topo src) (Topology.coords topo dst))
      (Topology.dims topo)
