(** The transport interface Portals implementations are written against.

    §3 of the paper stresses that the Portals 3.0 API deliberately lets the
    message-passing data structures live "in user-space, kernel-space, or
    NIC-space — whichever provides the highest performance". This record
    captures what varies between those placements:

    {ul
    {- [send]/[register]: byte movement between processes.}
    {- [charge_rx]: where receive-side protocol cycles execute. The NIC
       placement is a no-op for the host CPU (application bypass with no
       host perturbation); the kernel placement steals host CPU time
       (interrupt-driven application bypass, the Fig. 6 Portals curve).}
    {- [match_entry_cost]: per match-list-entry comparison cost in that
       placement.}
    {- [rx_fixed_cost]/[data_in_time]: per-message receive overhead and the
       time to land payload bytes in user memory (DMA vs bounce copies).}
    {- [send_overhead]: initiator-side cost of posting one operation
       (doorbell write vs system call).}}

    Handlers registered through a transport run {e after} [rx_fixed_cost]
    but are responsible for charging matching and data-landing costs, since
    only the Portals translation knows how many entries were walked. *)

type t = {
  sched : Sim_engine.Scheduler.t;
  name : string;
  send : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
  register : Proc_id.t -> (src:Proc_id.t -> bytes -> unit) -> unit;
  unregister : Proc_id.t -> unit;
  host_cpu : Proc_id.nid -> Sim_engine.Cpu.t;
  charge_rx : Proc_id.nid -> Sim_engine.Time_ns.t -> unit;
  rx_track : Proc_id.nid -> string;
      (** Trace-track name for receive-side protocol work on a node:
          ["nic<nid>"] when matching runs on the NIC, ["cpu<nid>"] when it
          steals the host CPU — so application bypass is visible as NIC
          spans overlapping host compute spans. *)
  match_entry_cost : Sim_engine.Time_ns.t;
  rx_fixed_cost : Sim_engine.Time_ns.t;
  data_in_time : int -> Sim_engine.Time_ns.t;
  host_copy_time : int -> Sim_engine.Time_ns.t;
      (** Host memcpy time for library-level copies (e.g. draining an
          unexpected-message buffer into the user's receive buffer) —
          always a host-CPU cost, whatever the protocol placement. *)
  send_overhead : Sim_engine.Time_ns.t;
  node_incarnation : Proc_id.nid -> int;
      (** Current incarnation of a node (see [Node.incarnation]); stamped
          into wire headers so receivers can fence stale traffic. *)
  on_crash : (Proc_id.nid -> unit) -> unit;
      (** Subscribe to crash-stop notifications (see [Fabric.on_crash]). *)
  on_restart : (Proc_id.nid -> unit) -> unit;
      (** Subscribe to restart notifications (see [Fabric.on_restart]). *)
}

val offload : Fabric.t -> t
(** NIC-space placement (the MCP): receive processing runs on the LANai at
    NIC cost rates; the host CPU is never touched on receive; payload lands
    by DMA. Send posts cost one doorbell write. *)

val kernel_interrupt : Fabric.t -> t
(** Kernel-space placement (the production Cplant modules): every message
    interrupts the host; protocol cycles and per-entry matching steal host
    CPU; payload lands through a kernel bounce copy; sends pay a system
    call. *)
