type t = {
  sched : Sim_engine.Scheduler.t;
  node_nid : Proc_id.nid;
  node_profile : Profile.t;
  cpu : Sim_engine.Cpu.t;
  link : Link.t;
  mutable up : bool;
  mutable node_incarnation : int;
  mutable node_crashes : int;
}

let create sched ~nid ~profile =
  {
    sched;
    node_nid = nid;
    node_profile = profile;
    cpu = Sim_engine.Cpu.create ~name:(Printf.sprintf "cpu%d" nid) sched;
    link = Link.create ~name:(Printf.sprintf "link%d" nid) sched;
    up = true;
    node_incarnation = 0;
    node_crashes = 0;
  }

let nid t = t.node_nid
let profile t = t.node_profile
let host_cpu t = t.cpu
let tx_link t = t.link
let sched t = t.sched
let is_up t = t.up
let incarnation t = t.node_incarnation
let crashes t = t.node_crashes

let crash t =
  if not t.up then invalid_arg (Printf.sprintf "Node.crash: node %d already down" t.node_nid);
  t.up <- false;
  t.node_crashes <- t.node_crashes + 1

let restart t =
  if t.up then invalid_arg (Printf.sprintf "Node.restart: node %d not down" t.node_nid);
  t.up <- true;
  t.node_incarnation <- t.node_incarnation + 1
