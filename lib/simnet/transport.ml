open Sim_engine

type t = {
  sched : Scheduler.t;
  name : string;
  send : src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit;
  register : Proc_id.t -> (src:Proc_id.t -> bytes -> unit) -> unit;
  unregister : Proc_id.t -> unit;
  host_cpu : Proc_id.nid -> Cpu.t;
  charge_rx : Proc_id.nid -> Time_ns.t -> unit;
  rx_track : Proc_id.nid -> string;
  match_entry_cost : Time_ns.t;
  rx_fixed_cost : Time_ns.t;
  data_in_time : int -> Time_ns.t;
  host_copy_time : int -> Time_ns.t;
  send_overhead : Time_ns.t;
  node_incarnation : Proc_id.nid -> int;
  on_crash : (Proc_id.nid -> unit) -> unit;
  on_restart : (Proc_id.nid -> unit) -> unit;
}

let host_cpu_of fabric nid = Node.host_cpu (Fabric.node fabric nid)

(* One receive engine (DMA or kernel-copy pipeline) per node: messages
   land in arrival order even when a small message tails a large one —
   the in-order guarantee of §2 must survive the landing stage. *)
let rx_engines fabric =
  let sched = Fabric.sched fabric in
  Array.init (Fabric.node_count fabric) (fun nid ->
      Link.create ~name:(Printf.sprintf "rx%d" nid) sched)

let offload fabric =
  let profile = Fabric.profile fabric in
  let sched = Fabric.sched fabric in
  let engines = rx_engines fabric in
  {
    sched;
    name = profile.Profile.name ^ "/offload";
    send =
      (fun ~src ~dst payload ->
        (* NIC header build + DMA setup before the message hits the wire. *)
        Scheduler.after sched profile.Profile.nic_tx_cost (fun () ->
            Fabric.send fabric ~src ~dst payload));
    register =
      (fun pid handler ->
        Fabric.register fabric pid (fun ~src payload ->
            (* NIC accept + DMA of the payload into its destination,
               serialised through the node's receive engine; the handler
               observes a fully landed message. *)
            let cost =
              Time_ns.add profile.Profile.nic_rx_cost
                (Profile.dma_time profile (Bytes.length payload))
            in
            let landed = Link.occupy engines.(pid.Proc_id.nid) cost in
            let tr = Scheduler.trace sched in
            if Trace.enabled tr then
              Trace.complete tr ~subsys:"net"
                ~proc:(Printf.sprintf "nic%d" pid.Proc_id.nid)
                ~start:(Time_ns.sub landed cost) ~finish:landed
                (Printf.sprintf "land %dB" (Bytes.length payload));
            Scheduler.at sched landed (fun () -> handler ~src payload)));
    unregister = (fun pid -> Fabric.unregister fabric pid);
    host_cpu = host_cpu_of fabric;
    charge_rx = (fun _nid _cost -> ()) (* runs on the NIC, host untouched *);
    rx_track = (fun nid -> Printf.sprintf "nic%d" nid);
    match_entry_cost = profile.Profile.nic_match_cost;
    rx_fixed_cost = profile.Profile.nic_rx_cost;
    data_in_time = (fun len -> Profile.dma_time profile len);
    host_copy_time = (fun len -> Profile.copy_time profile len);
    send_overhead = Time_ns.ns 500 (* user-space doorbell write *);
    node_incarnation = (fun nid -> Fabric.incarnation fabric nid);
    on_crash = (fun f -> Fabric.on_crash fabric f);
    on_restart = (fun f -> Fabric.on_restart fabric f);
  }

let kernel_interrupt fabric =
  let profile = Fabric.profile fabric in
  let sched = Fabric.sched fabric in
  let engines = rx_engines fabric in
  (* The kernel send path (syscall + bounce copy) is also a serialising
     stage — without it a small send would reach the wire before a large
     one posted just ahead of it. *)
  let tx_engines =
    Array.init (Fabric.node_count fabric) (fun nid ->
        Link.create ~name:(Printf.sprintf "ktx%d" nid) sched)
  in
  let charge_rx nid cost = Cpu.steal (host_cpu_of fabric nid) cost in
  {
    sched;
    name = profile.Profile.name ^ "/kernel";
    send =
      (fun ~src ~dst payload ->
        (* Syscall + copy into a kernel bounce buffer, then NIC launch. *)
        let len = Bytes.length payload in
        let cost =
          Time_ns.add profile.Profile.host_syscall_cost
            (Time_ns.add (Profile.copy_time profile len) profile.Profile.nic_tx_cost)
        in
        let launched = Link.occupy tx_engines.(src.Proc_id.nid) cost in
        Scheduler.at sched launched (fun () -> Fabric.send fabric ~src ~dst payload));
    register =
      (fun pid handler ->
        Fabric.register fabric pid (fun ~src payload ->
            let nid = pid.Proc_id.nid in
            (* Interrupt per message; handler entry and the bounce copy
               are charged to the host CPU, perturbing any in-flight
               application compute. Landing serialises per node. *)
            let copy = Profile.copy_time profile (Bytes.length payload) in
            let fixed =
              Time_ns.add profile.Profile.nic_rx_cost
                (Time_ns.add profile.Profile.host_interrupt_cost copy)
            in
            charge_rx nid (Time_ns.add profile.Profile.host_interrupt_cost copy);
            let landed = Link.occupy engines.(nid) fixed in
            let tr = Scheduler.trace sched in
            if Trace.enabled tr then
              Trace.complete tr ~subsys:"net"
                ~proc:(Printf.sprintf "cpu%d" nid)
                ~start:(Time_ns.sub landed fixed) ~finish:landed
                (Printf.sprintf "interrupt+copy %dB" (Bytes.length payload));
            Scheduler.at sched landed (fun () -> handler ~src payload)));
    unregister = (fun pid -> Fabric.unregister fabric pid);
    host_cpu = host_cpu_of fabric;
    charge_rx;
    rx_track = (fun nid -> Printf.sprintf "cpu%d" nid);
    match_entry_cost = profile.Profile.host_match_cost;
    rx_fixed_cost =
      Time_ns.add profile.Profile.nic_rx_cost profile.Profile.host_interrupt_cost;
    data_in_time = (fun len -> Profile.copy_time profile len);
    host_copy_time = (fun len -> Profile.copy_time profile len);
    send_overhead = profile.Profile.host_syscall_cost;
    node_incarnation = (fun nid -> Fabric.incarnation fabric nid);
    on_crash = (fun f -> Fabric.on_crash fabric f);
    on_restart = (fun f -> Fabric.on_restart fabric f);
  }
