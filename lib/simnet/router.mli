(** Deterministic routing over a {!Topology} hop graph.

    Every (src, dst) node pair maps onto exactly one path, chosen by the
    topology's canonical algorithm:

    {ul
    {- {e Dimension-order} (e-cube) for rings and tori: correct the
       offset in dimension 0 first, then dimension 1, and so on, always
       travelling the shorter way around (ties break towards the
       positive direction). Because a packet never returns to a lower
       dimension, the channel-dependency graph is acyclic — the classic
       deadlock-freedom argument — and each path is hop-count minimal.}
    {- {e Up/down} for fat-trees: climb from the source host towards the
       (deterministically chosen) least-common-ancestor switch, then
       descend to the destination. The up-path choice hashes (src, dst)
       so a pair always uses the same core switch — preserving the
       fabric's per-pair FIFO order — while distinct pairs spread over
       the available cores.}}

    Single-path determinism is what lets the multi-hop fabric keep the
    paper's §2 in-order guarantee: all messages of a pair cross the same
    FIFO links in the same order. *)

val route : Topology.t -> src:int -> dst:int -> int array
(** [route topo ~src ~dst] is the ordered array of directed link ids a
    message follows from node [src] to node [dst]. Empty when
    [src = dst] or when the topology is {!Topology.Full} (private wire,
    no shared hops). Raises [Invalid_argument] for out-of-range nodes. *)

val path_vertices : Topology.t -> src:int -> dst:int -> int list
(** The vertex sequence of {!route}, including [src] and [dst] (so its
    length is one more than the hop count). [[src]] when [src = dst].
    For {!Topology.Full} it is [[src; dst]] even though {!route} is
    empty — the private wire exists but is not a shared link. *)

val hop_count : Topology.t -> src:int -> dst:int -> int
(** [Array.length (route topo ~src ~dst)]. *)

val min_torus_hops : Topology.t -> src:int -> dst:int -> int
(** The theoretical minimal hop count between two nodes of a ring or
    torus: the sum over dimensions of the shorter wraparound distance.
    Used by tests to check {!route} minimality. Raises
    [Invalid_argument] on non-grid topologies. *)
