(** Composable fault models for the fabric.

    Cplant's reliability protocol lived {e below} the Portals modules: the
    wire was allowed to lose, duplicate and delay packets, and a
    seq/ACK/retransmit layer manufactured the reliable in-order service
    §2 of the paper assumes. To exercise that layer (lib/reliability) the
    fabric needs faults richer than the original boolean injector:

    {ul
    {- {!bernoulli}: i.i.d. loss at probability [p] — the classic sweep
       axis.}
    {- {!gilbert}: two-state Gilbert–Elliott burst loss; losses cluster,
       which is what stresses cumulative-ACK recovery.}
    {- {!duplicator}: delivers selected messages twice, exercising
       duplicate suppression.}
    {- {!corrupt}: mutates the encoded frame in flight — a seeded bit
       flip or truncation — exercising the integrity layer (frame
       checksums, §4.8 drop accounting).}
    {- {!delay}: seeded extra latency. By default the fabric still
       delivers each (src, dst) pair's traffic in send order (jitter
       reorders {e across} pairs only); [~reorder:true] lifts that and
       lets a pair's own messages overtake each other.}
    {- {!link_flap}: the link goes down for [downtime] out of every
       [period] and then repairs; everything sent while down is lost.}
    {- {!custom}: arbitrary stateful decisions (the old boolean injector
       is implemented with this).}}

    Every stochastic model carries its own explicit-state PRNG seeded at
    construction, so a campaign point [(model, seed)] replays exactly.
    Decisions are sampled once per message at {e send} time (corrupting
    models are re-sampled per hop on multi-hop routes; see [Fabric]). *)

type corruption =
  | Flip of { bit : int }  (** Flip bit [bit mod (len * 8)] of the frame. *)
  | Truncate of { keep : int }  (** Keep only the first [keep] bytes. *)

type decision =
  | Deliver  (** Let the message through untouched. *)
  | Drop  (** Lose the message after it occupies the wire. *)
  | Duplicate  (** Deliver the message twice. *)
  | Corrupt of corruption  (** Deliver a mutated copy of the frame. *)
  | Delay of { by : Sim_engine.Time_ns.t; reorder : bool }
      (** Deliver [by] later than the fault-free arrival; [reorder]
          permits overtaking within the (src, dst) pair. *)

type t

val none : t
(** Always {!Deliver}. *)

val bernoulli : ?seed:int -> p:float -> unit -> t
(** Drop each message independently with probability [p] (clamped to
    [0, 1]). *)

val gilbert :
  ?seed:int -> ?p_loss_bad:float -> p_enter:float -> p_exit:float -> unit -> t
(** Gilbert–Elliott burst loss. Each (src, dst) pair carries its own
    two-state chain: a Good link becomes Bad with probability [p_enter]
    per message, a Bad link repairs with probability [p_exit]; while Bad,
    messages drop with probability [p_loss_bad] (default 1.0). *)

val duplicator : ?seed:int -> p:float -> unit -> t
(** Duplicate each message independently with probability [p]. *)

val corrupt : ?seed:int -> p:float -> unit -> t
(** Corrupt each message independently with probability [p] (clamped to
    [0, 1]): 3/4 of corruption events flip one uniformly chosen bit, 1/4
    truncate the frame to a uniformly chosen prefix. Zero-length frames
    pass untouched. *)

val mutate : corruption -> bytes -> bytes
(** Apply a corruption to an encoded frame, returning a {e fresh} buffer
    (the sender still owns the original). Out-of-range positions wrap
    ([Flip]) or clamp ([Truncate]), so any sampled corruption applies to
    any frame. *)

val delay : ?seed:int -> ?jitter:Sim_engine.Time_ns.t -> ?reorder:bool ->
  mean:Sim_engine.Time_ns.t -> unit -> t
(** Delay every message by [mean ± uniform jitter] (default jitter
    [mean / 2], default [reorder] false). Raises [Invalid_argument] on a
    negative [mean] or [jitter], or [jitter > mean] (a negative delay
    cannot be scheduled). *)

val link_flap :
  ?offset:Sim_engine.Time_ns.t ->
  period:Sim_engine.Time_ns.t ->
  downtime:Sim_engine.Time_ns.t ->
  unit ->
  t
(** Deterministic outage-and-repair cycle: within each [period] (starting
    at [offset], default 0), the link is up for [period - downtime], then
    down for [downtime]. Messages sent while down are dropped. [downtime]
    must not exceed [period]. *)

val custom :
  (now:Sim_engine.Time_ns.t ->
  src:Proc_id.t ->
  dst:Proc_id.t ->
  len:int ->
  decision) ->
  t
(** Arbitrary decision function; may close over its own state. Custom
    models have no keyed per-hop sampler (their corruption, if any, is
    end-to-end only), and a closure over shared state is the one model
    kind whose draws can depend on global event order — the parallel
    engine's same-seed determinism guarantee does not extend to it. *)

val compose : t list -> t
(** Evaluate every model on every message (so each model's PRNG stream
    advances identically regardless of the others' decisions) and
    combine by severity: any [Drop] wins, else the first [Corrupt], else
    the first [Delay], else any [Duplicate], else [Deliver]. *)

val can_corrupt : t -> bool
(** Whether the model can ever return [Corrupt]. The fabric re-samples
    corrupting models at each hop of a multi-hop route (per-hop
    corruption) and skips the re-sampling entirely for models that
    cannot, keeping their PRNG streams unchanged. *)

type hop_sampler =
  src:Proc_id.t -> dst:Proc_id.t -> seq:int -> hop:int -> len:int ->
  corruption option
(** Keyed per-hop corruption re-sample: a pure function of (model seed,
    pair, per-pair message sequence [seq], hop index), independent of
    execution order — so a route may cross shard boundaries in the
    parallel engine without sharing PRNG state. *)

val hop_sample : t -> hop_sampler option
(** The model's keyed per-hop sampler, if it can corrupt ([None] for
    non-corrupting and [custom] models). *)

val decide :
  t ->
  now:Sim_engine.Time_ns.t ->
  src:Proc_id.t ->
  dst:Proc_id.t ->
  len:int ->
  decision

val describe : t -> string
(** Short human-readable summary, e.g. ["bernoulli(p=0.05)"]. *)

(** {1 Crash-stop schedules}

    Unlike the per-message models above, node failures are scheduled
    events: at [down_at] the victim node crash-stops (fibers killed,
    in-flight traffic lost, procs deregistered) and at [up_at], if given,
    it restarts in a fresh incarnation. Apply with
    [Fabric.apply_crash_schedule]. *)

type crash_event = {
  victim : Proc_id.nid;
  down_at : Sim_engine.Time_ns.t;
  up_at : Sim_engine.Time_ns.t option;  (** [None] = never restarts. *)
}

type crash_schedule = crash_event list

val crash_schedule :
  (Proc_id.nid * Sim_engine.Time_ns.t * Sim_engine.Time_ns.t option) list ->
  crash_schedule
(** Validate and sort a scripted kill/revive list. Raises
    [Invalid_argument] on a negative [down_at], an [up_at] not after its
    [down_at], or a node crashing again while still down. *)

(** {1 Partition schedules}

    Network partitions are scheduled events like crashes, not per-message
    coin flips: at [cut_at] traffic between the two groups is severed
    (both directions, or only group_a → group_b when [one_way]) and at
    [heal_at], if given, the cut repairs. Partitioned nodes stay {e up} —
    their fibers run, they keep sending — which is exactly what
    distinguishes a partition from a crash to the liveness layer. Apply
    with [Fabric.apply_partition_schedule]. *)

type partition_event = {
  group_a : Proc_id.nid list;
  group_b : Proc_id.nid list;
  one_way : bool;  (** Sever only group_a → group_b traffic. *)
  cut_at : Sim_engine.Time_ns.t;
  heal_at : Sim_engine.Time_ns.t option;  (** [None] = never heals. *)
}

type partition_schedule = partition_event list

val partition_schedule : partition_event list -> partition_schedule
(** Validate and sort a cut/heal list. Raises [Invalid_argument] on an
    empty group, a node on both sides of a cut, a negative [cut_at], or a
    [heal_at] not after its [cut_at]. *)

val partition_nids : partition_schedule -> Proc_id.nid list
(** Every node named by the schedule, deduplicated — for range
    validation against the fabric's node count. *)

val cut_now :
  partition_schedule ->
  now:Sim_engine.Time_ns.t ->
  src:Proc_id.nid ->
  dst:Proc_id.nid ->
  bool
(** Whether src → dst traffic is severed at [now]. *)

val random_crash_schedule :
  ?seed:int ->
  nids:Proc_id.nid list ->
  crashes:int ->
  horizon:Sim_engine.Time_ns.t ->
  unit ->
  crash_schedule
(** [crashes] kill/revive pairs with uniformly drawn victims and times,
    spread over disjoint slices of [\[0, horizon)] so the schedule is
    always valid. Deterministic in [seed]. *)
