open Sim_engine

type t = {
  sched : Scheduler.t;
  link_name : string;
  mutable free_at : Time_ns.t;
  mutable busy : Time_ns.t;
}

let create ?(name = "link") sched =
  let t = { sched; link_name = name; free_at = Time_ns.zero; busy = Time_ns.zero } in
  let m = Scheduler.metrics sched in
  let labels = [ ("link", name) ] in
  Metrics.probe m ~labels "link.busy_us" (fun () -> Time_ns.to_us t.busy);
  Metrics.probe m ~labels "link.utilization" (fun () ->
      let now = Time_ns.to_us (Scheduler.now sched) in
      if now <= 0. then 0. else Time_ns.to_us t.busy /. now);
  t

let occupy t d =
  if Time_ns.compare d Time_ns.zero < 0 then
    invalid_arg (t.link_name ^ ": negative occupancy");
  let start = Time_ns.max (Scheduler.now t.sched) t.free_at in
  let finish = Time_ns.add start d in
  t.free_at <- finish;
  t.busy <- Time_ns.add t.busy d;
  finish

let free_at t = t.free_at
let busy_time t = t.busy
