open Sim_engine

type congestion = { cong_depth : int; cong_bytes : int }

type t = {
  sched : Scheduler.t;
  link_name : string;
  bandwidth : float option;
  latency : Time_ns.t;
  queue_limit : int option;
  tracked : bool;
  mutable free_at : Time_ns.t;
  mutable busy : Time_ns.t;
  mutable outstanding : int;
  mutable peak_outstanding : int;
  mutable drops : int;
  mutable hook : (congestion -> unit) option;
  (* flow id -> number of its transmissions currently on this link;
     only maintained for tracked links. *)
  flows : (int, int) Hashtbl.t;
  mutable peak_flows : int;
}

let create ?(name = "link") ?bandwidth ?(latency = Time_ns.zero) ?queue_limit
    ?(tracked = false) sched =
  let t =
    {
      sched;
      link_name = name;
      bandwidth;
      latency;
      queue_limit;
      tracked;
      free_at = Time_ns.zero;
      busy = Time_ns.zero;
      outstanding = 0;
      peak_outstanding = 0;
      drops = 0;
      hook = None;
      flows = Hashtbl.create (if tracked then 8 else 1);
      peak_flows = 0;
    }
  in
  let m = Scheduler.metrics sched in
  let labels = [ ("link", name) ] in
  Metrics.probe m ~labels "link.busy_us" (fun () -> Time_ns.to_us t.busy);
  Metrics.probe m ~labels "link.utilization" (fun () ->
      let now = Time_ns.to_us (Scheduler.now sched) in
      if now <= 0. then 0. else Time_ns.to_us t.busy /. now);
  if tracked then begin
    Metrics.probe m ~labels "link.busy_ns" (fun () -> float_of_int t.busy);
    Metrics.probe m ~labels "link.queue_depth" (fun () ->
        float_of_int t.peak_outstanding);
    Metrics.probe m ~labels "link.flows" (fun () -> float_of_int t.peak_flows);
    Metrics.probe m ~labels "link.congestion_drops" (fun () ->
        float_of_int t.drops)
  end;
  t

let occupy t d =
  if Time_ns.compare d Time_ns.zero < 0 then
    invalid_arg (t.link_name ^ ": negative occupancy");
  let start = Time_ns.max (Scheduler.now t.sched) t.free_at in
  let finish = Time_ns.add start d in
  t.free_at <- finish;
  t.busy <- Time_ns.add t.busy d;
  finish

let flow_enter t flow =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.flows flow) in
  Hashtbl.replace t.flows flow (n + 1);
  if n = 0 then
    t.peak_flows <- max t.peak_flows (Hashtbl.length t.flows)

let flow_leave t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some 1 -> Hashtbl.remove t.flows flow
  | Some n -> Hashtbl.replace t.flows flow (n - 1)
  | None -> ()

let transmit t ?flow ~bytes () =
  let bandwidth =
    match t.bandwidth with
    | Some bw -> bw
    | None -> invalid_arg (t.link_name ^ ": transmit on a link with no bandwidth")
  in
  let congested =
    match t.queue_limit with
    | Some lim -> t.outstanding >= lim
    | None -> false
  in
  if congested then begin
    t.drops <- t.drops + 1;
    Option.iter
      (fun hook -> hook { cong_depth = t.outstanding; cong_bytes = bytes })
      t.hook;
    `Dropped
  end
  else begin
    let finish = occupy t (Time_ns.of_rate ~bytes_per_s:bandwidth bytes) in
    if t.tracked || t.queue_limit <> None then begin
      t.outstanding <- t.outstanding + 1;
      t.peak_outstanding <- max t.peak_outstanding t.outstanding;
      Option.iter (fun f -> flow_enter t f) flow;
      Scheduler.at t.sched finish (fun () ->
          t.outstanding <- t.outstanding - 1;
          Option.iter (fun f -> flow_leave t f) flow)
    end;
    `Accepted (Time_ns.add finish t.latency)
  end

let on_congestion t hook = t.hook <- Some hook
let name t = t.link_name
let free_at t = t.free_at
let busy_time t = t.busy
let queue_depth t = t.outstanding
let peak_queue_depth t = t.peak_outstanding
let peak_flows t = t.peak_flows
let congestion_drops t = t.drops
