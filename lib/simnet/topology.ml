type kind =
  | Full
  | Ring
  | Torus2d of int * int
  | Torus3d of int * int * int
  | Fat_tree of int

type link = { link_id : int; src_v : int; dst_v : int }

type t = {
  kind : kind;
  topo_nodes : int;
  vertices : int;
  links : link array;
  (* (src_v, dst_v) -> link_id for adjacent vertex pairs. *)
  edge_index : (int * int, int) Hashtbl.t;
  (* vertex -> neighbour vertices in construction order. *)
  adj : int list array;
}

let kind t = t.kind
let nodes t = t.topo_nodes
let vertex_count t = t.vertices
let link_count t = Array.length t.links

let link t id =
  if id < 0 || id >= Array.length t.links then
    invalid_arg (Printf.sprintf "Topology.link: id %d out of range" id);
  t.links.(id)

let find_link t ~src_v ~dst_v = Hashtbl.find_opt t.edge_index (src_v, dst_v)

let neighbors t v =
  if v < 0 || v >= t.vertices then
    invalid_arg (Printf.sprintf "Topology.neighbors: vertex %d out of range" v);
  if t.kind = Full then
    List.filter (fun u -> u <> v) (List.init t.topo_nodes Fun.id)
  else List.rev t.adj.(v)

let vertex_name t v =
  if v < t.topo_nodes then Printf.sprintf "node%d" v
  else Printf.sprintf "sw%d" (v - t.topo_nodes)

let link_name t id =
  let l = link t id in
  Printf.sprintf "%s->%s" (vertex_name t l.src_v) (vertex_name t l.dst_v)

let dims t =
  match t.kind with
  | Full | Fat_tree _ -> []
  | Ring -> [ t.topo_nodes ]
  | Torus2d (a, b) -> [ a; b ]
  | Torus3d (a, b, c) -> [ a; b; c ]

let coords t nid =
  let rec go nid = function
    | [] -> []
    | [ _ ] -> [ nid ]
    | _ :: rest ->
      (* Row-major: the last dimension varies fastest. *)
      let stride = List.fold_left ( * ) 1 rest in
      (nid / stride) :: go (nid mod stride) rest
  in
  match dims t with
  | [] -> []
  | ds ->
    if nid < 0 || nid >= t.topo_nodes then
      invalid_arg (Printf.sprintf "Topology.coords: nid %d out of range" nid);
    go nid ds

let of_coords t cs =
  let ds = dims t in
  if List.length ds <> List.length cs then
    invalid_arg "Topology.of_coords: wrong arity";
  List.fold_left2
    (fun acc c d ->
      if c < 0 || c >= d then invalid_arg "Topology.of_coords: out of range";
      (acc * d) + c)
    0 cs ds

(* --- construction ------------------------------------------------------ *)

type builder = {
  mutable blinks : link list;
  mutable n : int;
  bindex : (int * int, int) Hashtbl.t;
  badj : int list array;
}

let add_link b ~src_v ~dst_v =
  if not (Hashtbl.mem b.bindex (src_v, dst_v)) then begin
    Hashtbl.replace b.bindex (src_v, dst_v) b.n;
    b.blinks <- { link_id = b.n; src_v; dst_v } :: b.blinks;
    b.badj.(src_v) <- dst_v :: b.badj.(src_v);
    b.n <- b.n + 1
  end

let add_bidi b v u =
  add_link b ~src_v:v ~dst_v:u;
  add_link b ~src_v:u ~dst_v:v

let finish kind ~nodes ~vertices b =
  {
    kind;
    topo_nodes = nodes;
    vertices;
    links = Array.of_list (List.rev b.blinks);
    edge_index = b.bindex;
    adj = b.badj;
  }

let builder vertices =
  {
    blinks = [];
    n = 0;
    bindex = Hashtbl.create 64;
    badj = Array.make (max vertices 1) [];
  }

let build_torus kind ~nodes ds =
  if List.exists (fun d -> d < 1) ds then
    invalid_arg "Topology.build: torus dimensions must be positive";
  if List.fold_left ( * ) 1 ds <> nodes then
    invalid_arg
      (Printf.sprintf
         "Topology.build: dimensions (%s) do not multiply to %d nodes"
         (String.concat "x" (List.map string_of_int ds))
         nodes);
  let b = builder nodes in
  let t0 = finish kind ~nodes ~vertices:nodes b in
  (* Wire each node to its ±1 neighbour in every dimension (wraparound).
     Dimensions of size 1 contribute no links; size 2 contributes one
     bidirectional link (+1 and -1 coincide, deduplicated by add_link). *)
  for nid = 0 to nodes - 1 do
    let cs = coords t0 nid in
    List.iteri
      (fun i d ->
        if d > 1 then begin
          let step s =
            of_coords t0
              (List.mapi (fun j c -> if j = i then (c + s + d) mod d else c) cs)
          in
          add_bidi b nid (step 1);
          add_bidi b nid (step (-1))
        end)
      (dims t0)
  done;
  finish kind ~nodes ~vertices:nodes b

(* k-ary fat-tree (k even): k pods, each with k/2 edge and k/2 aggregation
   switches; (k/2)^2 core switches; k^3/4 hosts, k/2 per edge switch.
   Vertex layout: hosts 0..n-1, then per-pod edge switches, per-pod
   aggregation switches, then core switches. *)
let build_fat_tree ~nodes k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.build: fat-tree arity must be even and >= 2";
  if k * k * k / 4 <> nodes then
    invalid_arg
      (Printf.sprintf "Topology.build: fattree:%d hosts %d nodes, not %d" k
         (k * k * k / 4) nodes);
  let half = k / 2 in
  let edge p e = nodes + (p * half) + e in
  let agg p a = nodes + (k * half) + (p * half) + a in
  let core g c = nodes + (2 * k * half) + (g * half) + c in
  let vertices = nodes + (2 * k * half) + (half * half) in
  let b = builder vertices in
  for h = 0 to nodes - 1 do
    let p = h / (half * half) and e = h mod (half * half) / half in
    add_bidi b h (edge p e)
  done;
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        add_bidi b (edge p e) (agg p a)
      done
    done;
    (* Aggregation switch [a] of every pod uplinks to core group [a]. *)
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        add_bidi b (agg p a) (core a c)
      done
    done
  done;
  finish (Fat_tree k) ~nodes ~vertices b

let build kind ~nodes =
  if nodes <= 0 then invalid_arg "Topology.build: need at least one node";
  match kind with
  | Full ->
    (* The fully-connected fabric keeps the seed's private-wire model:
       no shared hop links exist, so the link table is empty. *)
    finish Full ~nodes ~vertices:nodes (builder nodes)
  | Ring ->
    if nodes < 2 then invalid_arg "Topology.build: ring needs >= 2 nodes";
    build_torus Ring ~nodes [ nodes ]
  | Torus2d (a, bb) -> build_torus (Torus2d (a, bb)) ~nodes [ a; bb ]
  | Torus3d (a, bb, c) -> build_torus (Torus3d (a, bb, c)) ~nodes [ a; bb; c ]
  | Fat_tree k -> build_fat_tree ~nodes k

(* --- specs ------------------------------------------------------------- *)

let describe = function
  | Full -> "full"
  | Ring -> "ring"
  | Torus2d (a, b) -> Printf.sprintf "torus2d:%dx%d" a b
  | Torus3d (a, b, c) -> Printf.sprintf "torus3d:%dx%dx%d" a b c
  | Fat_tree k -> Printf.sprintf "fattree:%d" k

(* Most-square factorisation: the largest divisor of [n] at most √n. *)
let square_factor n =
  let rec go a best = if a * a > n then best else go (a + 1) (if n mod a = 0 then a else best) in
  go 1 1

let of_spec ~nodes spec =
  let bad reason =
    invalid_arg
      (Printf.sprintf
         "Topology.of_spec: bad topology %S (%s); expected \
          full|ring|torus2d[:AxB]|torus3d[:AxBxC]|fattree[:K]"
         spec reason)
  in
  let dims_of s arity =
    match
      List.map
        (fun f ->
          match int_of_string_opt (String.trim f) with
          | Some d when d > 0 -> d
          | Some _ | None -> bad (Printf.sprintf "%S is not a positive integer" f))
        (String.split_on_char 'x' s)
    with
    | ds when List.length ds = arity -> ds
    | _ -> bad (Printf.sprintf "expected %d dimensions" arity)
  in
  let check kind =
    match build kind ~nodes with
    | _ -> kind
    | exception Invalid_argument msg -> bad msg
  in
  match String.split_on_char ':' (String.trim (String.lowercase_ascii spec)) with
  | [ "full" ] -> Full
  | [ "ring" ] -> check Ring
  | [ "torus2d" ] ->
    let a = square_factor nodes in
    check (Torus2d (a, nodes / a))
  | [ "torus2d"; d ] -> (
    match dims_of d 2 with [ a; b ] -> check (Torus2d (a, b)) | _ -> assert false)
  | [ "torus3d" ] ->
    let a = square_factor nodes in
    let b = square_factor (nodes / a) in
    check (Torus3d (b, a, nodes / a / b))
  | [ "torus3d"; d ] -> (
    match dims_of d 3 with
    | [ a; b; c ] -> check (Torus3d (a, b, c))
    | _ -> assert false)
  | [ "fattree" ] ->
    let rec find k = if k * k * k / 4 >= nodes || k > 64 then k else find (k + 2) in
    check (Fat_tree (find 2))
  | [ "fattree"; ks ] -> (
    match int_of_string_opt (String.trim ks) with
    | Some k -> check (Fat_tree k)
    | None -> bad (Printf.sprintf "%S is not an integer arity" ks))
  | _ -> bad "unknown shape"

let pp ppf t =
  Format.fprintf ppf "%s (%d nodes, %d vertices, %d links)" (describe t.kind)
    t.topo_nodes t.vertices (link_count t)
