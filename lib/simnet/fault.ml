open Sim_engine

type decision = Deliver | Drop | Duplicate

type t = {
  label : string;
  f : now:Time_ns.t -> src:Proc_id.t -> dst:Proc_id.t -> len:int -> decision;
}

let none =
  { label = "none"; f = (fun ~now:_ ~src:_ ~dst:_ ~len:_ -> Deliver) }

let clamp01 p = if p < 0. then 0. else if p > 1. then 1. else p

let bernoulli ?(seed = 0) ~p () =
  let p = clamp01 p in
  let prng = Prng.create ~seed in
  {
    label = Printf.sprintf "bernoulli(p=%g)" p;
    f =
      (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
        if Prng.float prng 1.0 < p then Drop else Deliver);
  }

(* Each pair gets a chain with its own PRNG derived from the model seed
   and the pair identity, so the stream one pair sees does not depend on
   how its traffic interleaves with other pairs'. *)
let pair_seed seed (src : Proc_id.t) (dst : Proc_id.t) =
  let mix acc v = (acc * 0x100000001b3) lxor v in
  List.fold_left mix seed
    [ src.Proc_id.nid; src.Proc_id.pid; dst.Proc_id.nid; dst.Proc_id.pid ]

let gilbert ?(seed = 0) ?(p_loss_bad = 1.0) ~p_enter ~p_exit () =
  let p_enter = clamp01 p_enter
  and p_exit = clamp01 p_exit
  and p_loss_bad = clamp01 p_loss_bad in
  let chains : (Proc_id.t * Proc_id.t, bool ref * Prng.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let chain src dst =
    match Hashtbl.find_opt chains (src, dst) with
    | Some c -> c
    | None ->
      let c = (ref false, Prng.create ~seed:(pair_seed seed src dst)) in
      Hashtbl.replace chains (src, dst) c;
      c
  in
  {
    label =
      Printf.sprintf "gilbert(enter=%g,exit=%g,loss=%g)" p_enter p_exit
        p_loss_bad;
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        let bad, prng = chain src dst in
        (if !bad then begin
           if Prng.float prng 1.0 < p_exit then bad := false
         end
         else if Prng.float prng 1.0 < p_enter then bad := true);
        if !bad && Prng.float prng 1.0 < p_loss_bad then Drop else Deliver);
  }

let duplicator ?(seed = 0) ~p () =
  let p = clamp01 p in
  let prng = Prng.create ~seed in
  {
    label = Printf.sprintf "duplicator(p=%g)" p;
    f =
      (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
        if Prng.float prng 1.0 < p then Duplicate else Deliver);
  }

let link_flap ?(offset = Time_ns.zero) ~period ~downtime () =
  if period <= 0 then invalid_arg "Fault.link_flap: period must be positive";
  if downtime < 0 || downtime > period then
    invalid_arg "Fault.link_flap: downtime must lie within the period";
  let uptime = period - downtime in
  {
    label =
      Printf.sprintf "link_flap(period=%s,down=%s)" (Time_ns.to_string period)
        (Time_ns.to_string downtime);
    f =
      (fun ~now ~src:_ ~dst:_ ~len:_ ->
        let t = Time_ns.sub now offset in
        let phase = ((t mod period) + period) mod period in
        if phase >= uptime then Drop else Deliver);
  }

let custom f = { label = "custom"; f }

let compose models =
  match models with
  | [] -> none
  | [ m ] -> m
  | _ ->
    {
      label =
        "compose(" ^ String.concat "," (List.map (fun m -> m.label) models) ^ ")";
      f =
        (fun ~now ~src ~dst ~len ->
          (* Evaluate all so PRNG streams advance deterministically. *)
          let decisions =
            List.map (fun m -> m.f ~now ~src ~dst ~len) models
          in
          if List.mem Drop decisions then Drop
          else if List.mem Duplicate decisions then Duplicate
          else Deliver);
    }

let decide t ~now ~src ~dst ~len = t.f ~now ~src ~dst ~len
let describe t = t.label
