open Sim_engine

type corruption = Flip of { bit : int } | Truncate of { keep : int }

type decision =
  | Deliver
  | Drop
  | Duplicate
  | Corrupt of corruption
  | Delay of { by : Time_ns.t; reorder : bool }

(* Per-hop corruption re-samples are {e keyed}, not streamed: the draw is
   a pure function of (model seed, pair, per-pair message sequence, hop
   index), so it does not matter on which shard — or in which global
   event order — a hop executes. This is what lets a multi-hop route
   cross shard boundaries in the parallel engine without sharing PRNG
   state. *)
type hop_sampler =
  src:Proc_id.t -> dst:Proc_id.t -> seq:int -> hop:int -> len:int ->
  corruption option

type t = {
  label : string;
  f : now:Time_ns.t -> src:Proc_id.t -> dst:Proc_id.t -> len:int -> decision;
  corrupting : bool;
      (* Whether this model can ever return [Corrupt] — lets the fabric
         skip per-hop re-sampling for models that never mutate bytes, so
         their multi-hop PRNG streams stay what they were before
         corruption existed. *)
  hop : hop_sampler option;
      (* Keyed per-hop re-sample; [None] for models that never corrupt
         and for [custom] models (whose closure cannot be keyed). *)
}

let none =
  {
    label = "none";
    f = (fun ~now:_ ~src:_ ~dst:_ ~len:_ -> Deliver);
    corrupting = false;
    hop = None;
  }

let clamp01 p = if p < 0. then 0. else if p > 1. then 1. else p

(* Each pair gets a chain with its own PRNG derived from the model seed
   and the pair identity, so the stream one pair sees does not depend on
   how its traffic interleaves with other pairs'. Under the parallel
   engine this is load-bearing for every stochastic model, not just
   gilbert: a pair's draws happen in its sender's program order, which is
   deterministic per shard, while any shared stream would be consumed in
   global event order — an artifact of the partitioning. *)
let pair_seed seed (src : Proc_id.t) (dst : Proc_id.t) =
  let mix acc v = (acc * 0x100000001b3) lxor v in
  List.fold_left mix seed
    [ src.Proc_id.nid; src.Proc_id.pid; dst.Proc_id.nid; dst.Proc_id.pid ]

let hop_key seed (src : Proc_id.t) (dst : Proc_id.t) ~seq ~hop =
  let mix acc v = (acc * 0x100000001b3) lxor v in
  List.fold_left mix (pair_seed seed src dst) [ 0x9E3779B9; seq; hop ]

(* Lazily-built per-pair streams backing a stochastic model instance. *)
let per_pair_streams seed =
  let chains : (Proc_id.t * Proc_id.t, Prng.t) Hashtbl.t = Hashtbl.create 16 in
  fun src dst ->
    match Hashtbl.find_opt chains (src, dst) with
    | Some prng -> prng
    | None ->
      let prng = Prng.create ~seed:(pair_seed seed src dst) in
      Hashtbl.replace chains (src, dst) prng;
      prng

let bernoulli ?(seed = 0) ~p () =
  let p = clamp01 p in
  let stream = per_pair_streams seed in
  {
    label = Printf.sprintf "bernoulli(p=%g)" p;
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        if Prng.float (stream src dst) 1.0 < p then Drop else Deliver);
    corrupting = false;
    hop = None;
  }

let gilbert ?(seed = 0) ?(p_loss_bad = 1.0) ~p_enter ~p_exit () =
  let p_enter = clamp01 p_enter
  and p_exit = clamp01 p_exit
  and p_loss_bad = clamp01 p_loss_bad in
  let chains : (Proc_id.t * Proc_id.t, bool ref * Prng.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let chain src dst =
    match Hashtbl.find_opt chains (src, dst) with
    | Some c -> c
    | None ->
      let c = (ref false, Prng.create ~seed:(pair_seed seed src dst)) in
      Hashtbl.replace chains (src, dst) c;
      c
  in
  {
    label =
      Printf.sprintf "gilbert(enter=%g,exit=%g,loss=%g)" p_enter p_exit
        p_loss_bad;
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        let bad, prng = chain src dst in
        (if !bad then begin
           if Prng.float prng 1.0 < p_exit then bad := false
         end
         else if Prng.float prng 1.0 < p_enter then bad := true);
        if !bad && Prng.float prng 1.0 < p_loss_bad then Drop else Deliver);
    corrupting = false;
    hop = None;
  }

let duplicator ?(seed = 0) ~p () =
  let p = clamp01 p in
  let stream = per_pair_streams seed in
  {
    label = Printf.sprintf "duplicator(p=%g)" p;
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        if Prng.float (stream src dst) 1.0 < p then Duplicate else Deliver);
    corrupting = false;
    hop = None;
  }

let sample_corruption prng ~p ~len =
  if Prng.float prng 1.0 >= p || len = 0 then None
  else if Prng.float prng 1.0 < 0.25 then
    Some (Truncate { keep = Prng.int prng len })
  else Some (Flip { bit = Prng.int prng (len * 8) })

let corrupt ?(seed = 0) ~p () =
  let p = clamp01 p in
  let stream = per_pair_streams seed in
  {
    label = Printf.sprintf "corrupt(p=%g)" p;
    f =
      (fun ~now:_ ~src ~dst ~len ->
        match sample_corruption (stream src dst) ~p ~len with
        | Some c -> Corrupt c
        | None -> Deliver);
    corrupting = true;
    hop =
      Some
        (fun ~src ~dst ~seq ~hop ~len ->
          let prng = Prng.create ~seed:(hop_key seed src dst ~seq ~hop) in
          sample_corruption prng ~p ~len);
  }

(* A mutated frame is always a fresh buffer: the sender still owns the
   original (it may be duplicated, retransmitted or reused). *)
let mutate c payload =
  match c with
  | Flip { bit } ->
    let buf = Bytes.copy payload in
    let len = Bytes.length buf in
    if len > 0 then begin
      let byte = bit / 8 mod len and mask = 1 lsl (bit mod 8) in
      Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor mask))
    end;
    buf
  | Truncate { keep } ->
    let keep = max 0 (min keep (Bytes.length payload)) in
    Bytes.sub payload 0 keep

let delay ?(seed = 0) ?jitter ?(reorder = false) ~mean () =
  if Time_ns.compare mean Time_ns.zero < 0 then
    invalid_arg "Fault.delay: mean must be >= 0";
  let jitter = match jitter with Some j -> j | None -> mean / 2 in
  if Time_ns.compare jitter Time_ns.zero < 0 then
    invalid_arg "Fault.delay: jitter must be >= 0";
  if Time_ns.compare jitter mean > 0 then
    invalid_arg "Fault.delay: jitter must not exceed the mean";
  let stream = per_pair_streams seed in
  {
    label =
      Printf.sprintf "delay(mean=%s,jitter=%s%s)" (Time_ns.to_string mean)
        (Time_ns.to_string jitter)
        (if reorder then ",reorder" else "");
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        let by =
          if jitter = 0 then mean
          else mean - jitter + Prng.int (stream src dst) ((2 * jitter) + 1)
        in
        if by = 0 then Deliver else Delay { by; reorder });
    corrupting = false;
    hop = None;
  }

let link_flap ?(offset = Time_ns.zero) ~period ~downtime () =
  if period <= 0 then invalid_arg "Fault.link_flap: period must be positive";
  if downtime < 0 || downtime > period then
    invalid_arg "Fault.link_flap: downtime must lie within the period";
  let uptime = period - downtime in
  {
    label =
      Printf.sprintf "link_flap(period=%s,down=%s)" (Time_ns.to_string period)
        (Time_ns.to_string downtime);
    f =
      (fun ~now ~src:_ ~dst:_ ~len:_ ->
        let t = Time_ns.sub now offset in
        let phase = ((t mod period) + period) mod period in
        if phase >= uptime then Drop else Deliver);
    corrupting = false;
    hop = None;
  }

let custom f = { label = "custom"; f; corrupting = true; hop = None }

let compose models =
  match models with
  | [] -> none
  | [ m ] -> m
  | _ ->
    {
      label =
        "compose(" ^ String.concat "," (List.map (fun m -> m.label) models) ^ ")";
      f =
        (fun ~now ~src ~dst ~len ->
          (* Evaluate all so PRNG streams advance deterministically. *)
          let decisions =
            List.map (fun m -> m.f ~now ~src ~dst ~len) models
          in
          let first p = List.find_opt p decisions in
          if List.mem Drop decisions then Drop
          else
            match first (function Corrupt _ -> true | _ -> false) with
            | Some d -> d
            | None -> (
              match first (function Delay _ -> true | _ -> false) with
              | Some d -> d
              | None ->
                if List.mem Duplicate decisions then Duplicate else Deliver));
      corrupting = List.exists (fun m -> m.corrupting) models;
      hop =
        (match List.filter_map (fun m -> m.hop) models with
        | [] -> None
        | hops ->
          Some
            (fun ~src ~dst ~seq ~hop ~len ->
              List.fold_left
                (fun acc h ->
                  match acc with
                  | Some _ -> acc
                  | None -> h ~src ~dst ~seq ~hop ~len)
                None hops));
    }

let decide t ~now ~src ~dst ~len = t.f ~now ~src ~dst ~len
let describe t = t.label
let can_corrupt t = t.corrupting
let hop_sample t = t.hop

type crash_event = {
  victim : Proc_id.nid;
  down_at : Time_ns.t;
  up_at : Time_ns.t option;
}

type crash_schedule = crash_event list

let crash_schedule events =
  let evs =
    List.map
      (fun (victim, down_at, up_at) ->
        if Time_ns.compare down_at Time_ns.zero < 0 then
          invalid_arg "Fault.crash_schedule: down_at must be >= 0";
        (match up_at with
        | Some u when Time_ns.compare u down_at <= 0 ->
          invalid_arg "Fault.crash_schedule: up_at must be after down_at"
        | _ -> ());
        { victim; down_at; up_at })
      events
    |> List.sort (fun a b -> compare (a.down_at, a.victim) (b.down_at, b.victim))
  in
  (* A node cannot crash again while already down. *)
  let last : (Proc_id.nid, Time_ns.t option) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.victim with
      | Some None ->
        invalid_arg
          (Printf.sprintf
             "Fault.crash_schedule: node %d crashes again after a permanent kill"
             e.victim)
      | Some (Some prev_up) when Time_ns.compare e.down_at prev_up < 0 ->
        invalid_arg
          (Printf.sprintf
             "Fault.crash_schedule: node %d crashes again before its restart"
             e.victim)
      | _ -> ());
      Hashtbl.replace last e.victim e.up_at)
    evs;
  evs

type partition_event = {
  group_a : Proc_id.nid list;
  group_b : Proc_id.nid list;
  one_way : bool;
  cut_at : Time_ns.t;
  heal_at : Time_ns.t option;
}

type partition_schedule = partition_event list

let partition_schedule events =
  List.iter
    (fun e ->
      if e.group_a = [] || e.group_b = [] then
        invalid_arg "Fault.partition_schedule: both groups must be non-empty";
      List.iter
        (fun nid ->
          if List.mem nid e.group_b then
            invalid_arg
              (Printf.sprintf
                 "Fault.partition_schedule: node %d appears on both sides of \
                  the cut"
                 nid))
        e.group_a;
      if Time_ns.compare e.cut_at Time_ns.zero < 0 then
        invalid_arg "Fault.partition_schedule: cut_at must be >= 0";
      match e.heal_at with
      | Some h when Time_ns.compare h e.cut_at <= 0 ->
        invalid_arg "Fault.partition_schedule: heal_at must be after cut_at"
      | _ -> ())
    events;
  List.sort (fun a b -> Time_ns.compare a.cut_at b.cut_at) events

let partition_nids schedule =
  List.concat_map (fun e -> e.group_a @ e.group_b) schedule
  |> List.sort_uniq compare

(* Whether src -> dst traffic is severed at [now]. A symmetric cut severs
   both directions; a one-way cut only severs group_a -> group_b. *)
let cut_now schedule ~now ~src ~dst =
  List.exists
    (fun e ->
      Time_ns.compare e.cut_at now <= 0
      && (match e.heal_at with
         | None -> true
         | Some h -> Time_ns.compare now h < 0)
      && ((List.mem src e.group_a && List.mem dst e.group_b)
         || ((not e.one_way) && List.mem src e.group_b && List.mem dst e.group_a)))
    schedule

let random_crash_schedule ?(seed = 0) ~nids ~crashes ~horizon () =
  if crashes < 0 then
    invalid_arg "Fault.random_crash_schedule: crashes must be >= 0";
  if crashes = 0 then []
  else begin
    if nids = [] then
      invalid_arg "Fault.random_crash_schedule: no candidate nodes";
    if Time_ns.compare horizon Time_ns.zero <= 0 then
      invalid_arg "Fault.random_crash_schedule: horizon must be positive";
    let prng = Prng.create ~seed in
    let pool = Array.of_list nids in
    (* Disjoint per-event slices of the horizon keep the schedule valid
       even when the same victim is drawn twice. *)
    let slice = max 2 (horizon / crashes) in
    List.init crashes (fun k ->
        let victim = pool.(Prng.int prng (Array.length pool)) in
        let base = k * slice in
        let half = max 1 (slice / 2) in
        let down_at = base + Prng.int prng half in
        let up_at = base + half + Prng.int prng (max 1 (slice - half - 1)) in
        (victim, down_at, Some up_at))
    |> crash_schedule
  end
