open Sim_engine

type decision = Deliver | Drop | Duplicate

type t = {
  label : string;
  f : now:Time_ns.t -> src:Proc_id.t -> dst:Proc_id.t -> len:int -> decision;
}

let none =
  { label = "none"; f = (fun ~now:_ ~src:_ ~dst:_ ~len:_ -> Deliver) }

let clamp01 p = if p < 0. then 0. else if p > 1. then 1. else p

let bernoulli ?(seed = 0) ~p () =
  let p = clamp01 p in
  let prng = Prng.create ~seed in
  {
    label = Printf.sprintf "bernoulli(p=%g)" p;
    f =
      (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
        if Prng.float prng 1.0 < p then Drop else Deliver);
  }

(* Each pair gets a chain with its own PRNG derived from the model seed
   and the pair identity, so the stream one pair sees does not depend on
   how its traffic interleaves with other pairs'. *)
let pair_seed seed (src : Proc_id.t) (dst : Proc_id.t) =
  let mix acc v = (acc * 0x100000001b3) lxor v in
  List.fold_left mix seed
    [ src.Proc_id.nid; src.Proc_id.pid; dst.Proc_id.nid; dst.Proc_id.pid ]

let gilbert ?(seed = 0) ?(p_loss_bad = 1.0) ~p_enter ~p_exit () =
  let p_enter = clamp01 p_enter
  and p_exit = clamp01 p_exit
  and p_loss_bad = clamp01 p_loss_bad in
  let chains : (Proc_id.t * Proc_id.t, bool ref * Prng.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let chain src dst =
    match Hashtbl.find_opt chains (src, dst) with
    | Some c -> c
    | None ->
      let c = (ref false, Prng.create ~seed:(pair_seed seed src dst)) in
      Hashtbl.replace chains (src, dst) c;
      c
  in
  {
    label =
      Printf.sprintf "gilbert(enter=%g,exit=%g,loss=%g)" p_enter p_exit
        p_loss_bad;
    f =
      (fun ~now:_ ~src ~dst ~len:_ ->
        let bad, prng = chain src dst in
        (if !bad then begin
           if Prng.float prng 1.0 < p_exit then bad := false
         end
         else if Prng.float prng 1.0 < p_enter then bad := true);
        if !bad && Prng.float prng 1.0 < p_loss_bad then Drop else Deliver);
  }

let duplicator ?(seed = 0) ~p () =
  let p = clamp01 p in
  let prng = Prng.create ~seed in
  {
    label = Printf.sprintf "duplicator(p=%g)" p;
    f =
      (fun ~now:_ ~src:_ ~dst:_ ~len:_ ->
        if Prng.float prng 1.0 < p then Duplicate else Deliver);
  }

let link_flap ?(offset = Time_ns.zero) ~period ~downtime () =
  if period <= 0 then invalid_arg "Fault.link_flap: period must be positive";
  if downtime < 0 || downtime > period then
    invalid_arg "Fault.link_flap: downtime must lie within the period";
  let uptime = period - downtime in
  {
    label =
      Printf.sprintf "link_flap(period=%s,down=%s)" (Time_ns.to_string period)
        (Time_ns.to_string downtime);
    f =
      (fun ~now ~src:_ ~dst:_ ~len:_ ->
        let t = Time_ns.sub now offset in
        let phase = ((t mod period) + period) mod period in
        if phase >= uptime then Drop else Deliver);
  }

let custom f = { label = "custom"; f }

let compose models =
  match models with
  | [] -> none
  | [ m ] -> m
  | _ ->
    {
      label =
        "compose(" ^ String.concat "," (List.map (fun m -> m.label) models) ^ ")";
      f =
        (fun ~now ~src ~dst ~len ->
          (* Evaluate all so PRNG streams advance deterministically. *)
          let decisions =
            List.map (fun m -> m.f ~now ~src ~dst ~len) models
          in
          if List.mem Drop decisions then Drop
          else if List.mem Duplicate decisions then Duplicate
          else Deliver);
    }

let decide t ~now ~src ~dst ~len = t.f ~now ~src ~dst ~len
let describe t = t.label

type crash_event = {
  victim : Proc_id.nid;
  down_at : Time_ns.t;
  up_at : Time_ns.t option;
}

type crash_schedule = crash_event list

let crash_schedule events =
  let evs =
    List.map
      (fun (victim, down_at, up_at) ->
        if Time_ns.compare down_at Time_ns.zero < 0 then
          invalid_arg "Fault.crash_schedule: down_at must be >= 0";
        (match up_at with
        | Some u when Time_ns.compare u down_at <= 0 ->
          invalid_arg "Fault.crash_schedule: up_at must be after down_at"
        | _ -> ());
        { victim; down_at; up_at })
      events
    |> List.sort (fun a b -> compare (a.down_at, a.victim) (b.down_at, b.victim))
  in
  (* A node cannot crash again while already down. *)
  let last : (Proc_id.nid, Time_ns.t option) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.victim with
      | Some None ->
        invalid_arg
          (Printf.sprintf
             "Fault.crash_schedule: node %d crashes again after a permanent kill"
             e.victim)
      | Some (Some prev_up) when Time_ns.compare e.down_at prev_up < 0 ->
        invalid_arg
          (Printf.sprintf
             "Fault.crash_schedule: node %d crashes again before its restart"
             e.victim)
      | _ -> ());
      Hashtbl.replace last e.victim e.up_at)
    evs;
  evs

let random_crash_schedule ?(seed = 0) ~nids ~crashes ~horizon () =
  if crashes < 0 then
    invalid_arg "Fault.random_crash_schedule: crashes must be >= 0";
  if crashes = 0 then []
  else begin
    if nids = [] then
      invalid_arg "Fault.random_crash_schedule: no candidate nodes";
    if Time_ns.compare horizon Time_ns.zero <= 0 then
      invalid_arg "Fault.random_crash_schedule: horizon must be positive";
    let prng = Prng.create ~seed in
    let pool = Array.of_list nids in
    (* Disjoint per-event slices of the horizon keep the schedule valid
       even when the same victim is drawn twice. *)
    let slice = max 2 (horizon / crashes) in
    List.init crashes (fun k ->
        let victim = pool.(Prng.int prng (Array.length pool)) in
        let base = k * slice in
        let half = max 1 (slice / 2) in
        let down_at = base + Prng.int prng half in
        let up_at = base + half + Prng.int prng (max 1 (slice - half - 1)) in
        (victim, down_at, Some up_at))
    |> crash_schedule
  end
