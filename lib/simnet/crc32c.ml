(* CRC-32C (Castagnoli), the polynomial iSCSI and modern RDMA NICs use
   for end-to-end frame protection. Plain table-driven byte-at-a-time:
   the simulator checksums a few KiB per message, not line rate. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc buf ~pos ~len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc :=
      table.((!crc lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let digest ?(pos = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32c.digest: range out of bounds";
  update 0 buf ~pos ~len

let digest_string s = digest (Bytes.unsafe_of_string s)
