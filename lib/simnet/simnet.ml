(** Simulated cluster network substrate. See the individual modules. *)

module Proc_id = Proc_id
module Profile = Profile
module Topology = Topology
module Router = Router
module Link = Link
module Node = Node
module Fault = Fault
module Crc32c = Crc32c
module Integrity = Integrity
module Fabric = Fabric
module Transport = Transport
module Shard_map = Shard_map
