open Sim_engine

(* Node-to-shard partitioning for the parallel engine, plus the
   conservative lookahead bound the window barrier runs on.

   Compute nodes are split into contiguous, balanced blocks of ids. With
   row-major torus numbering this makes each shard a stripe of rows, so
   cut links — links whose endpoints live on different shards — are only
   the stripe boundaries: the partition a human would draw, obtained for
   free from the id layout. Switch vertices of indirect topologies
   (fat-tree) are assigned deterministically by folding the vertex id
   back onto the compute range.

   The lookahead is the minimum latency of any cut link: an event on one
   shard can only affect another after at least one cut-link crossing,
   so every shard may run [lookahead] ahead of the rest without
   communication. On the full topology every cross-node message pays the
   profile wire latency, which is therefore the bound. *)

type t = {
  shards : int;
  nodes : int;
  owner : int array; (* vertex id -> shard *)
  lookahead : Time_ns.t;
}

let node_owner ~nodes ~shards nid =
  (* Contiguous balanced blocks: block k covers ids
     [k*nodes/shards, (k+1)*nodes/shards). *)
  min (shards - 1) (nid * shards / nodes)

let build topo ~(profile : Profile.t) ~shards =
  let nodes = Topology.nodes topo in
  if shards < 1 then invalid_arg "Shard_map.build: need at least one shard";
  if shards > nodes then
    invalid_arg
      (Printf.sprintf "Shard_map.build: %d shards but only %d nodes" shards
         nodes);
  let vertices = Topology.vertex_count topo in
  let owner =
    Array.init vertices (fun v ->
        node_owner ~nodes ~shards (if v < nodes then v else v mod nodes))
  in
  let lookahead = ref profile.Profile.wire_latency in
  (* All hop links currently share the profile wire latency (the fabric
     creates them that way), but derive the bound from the cut honestly
     so per-link latencies can diverge later without touching this. *)
  for id = 0 to Topology.link_count topo - 1 do
    let l = Topology.link topo id in
    if owner.(l.Topology.src_v) <> owner.(l.Topology.dst_v) then
      lookahead := min !lookahead profile.Profile.wire_latency
  done;
  if shards > 1 && Time_ns.compare !lookahead Time_ns.zero <= 0 then
    invalid_arg "Shard_map.build: zero-latency cut link admits no lookahead";
  { shards; nodes; owner; lookahead = !lookahead }

let shards t = t.shards
let lookahead t = t.lookahead

let owner t v =
  if v < 0 || v >= Array.length t.owner then
    invalid_arg (Printf.sprintf "Shard_map.owner: vertex %d out of range" v);
  t.owner.(v)

let nodes_of t shard =
  let acc = ref [] in
  for nid = t.nodes - 1 downto 0 do
    if t.owner.(nid) = shard then acc := nid :: !acc
  done;
  !acc

let cut_links t topo =
  let acc = ref [] in
  for id = Topology.link_count topo - 1 downto 0 do
    let l = Topology.link topo id in
    if t.owner.(l.Topology.src_v) <> t.owner.(l.Topology.dst_v) then
      acc := id :: !acc
  done;
  !acc
