(** CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum
    iSCSI and RDMA-era NICs compute in hardware. Wire codecs ([Wire],
    the reliability shim's frames) append it to detect in-flight
    corruption end to end. Values are non-negative 32-bit ints. *)

val digest : ?pos:int -> ?len:int -> bytes -> int
(** Checksum of [buf[pos .. pos+len)] (default: the whole buffer).
    Raises [Invalid_argument] on an out-of-bounds range. *)

val digest_string : string -> int

val update : int -> bytes -> pos:int -> len:int -> int
(** Incremental form: [update crc buf ~pos ~len] extends [crc] (start
    from [digest Bytes.empty = 0]'s identity, i.e. pass [0]). *)
