(** Process-wide wire-integrity switch.

    When enabled, every frame codec above the fabric (the Portals [Wire]
    format, the reliability shim's frames) appends a {!Crc32c} trailer at
    encode time and {e requires} it at decode time — a legacy unprotected
    frame is rejected, so a corruption cannot launder itself by flipping
    the version byte back to the unprotected format. When disabled
    (default), frames are encoded exactly as before the integrity layer
    existed, keeping fault-free runs byte-identical.

    The runtime ([Runtime.create_world]) enables it whenever the run has
    a fault model or partition schedule configured, and disables it
    otherwise. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to a value, restoring the
    previous state afterwards (exception-safe) — for tests that pin one
    mode. *)
