open Sim_engine

(* An ibverbs-style HCA over the simnet fabric: registered memory
   regions addressed by rkey, one-sided RDMA writes framed as Portals
   put requests (the wire format is placement-agnostic; §4.6), and a
   completion queue the host polls. The remote host CPU is never
   involved in landing a write — the HCA handler only blits into the
   target region — which is exactly the property Liu et al. build
   MVAPICH's fast path on, and the property the paper's Figure 6
   comparison is about. *)

type completion = Write_complete of { wr_id : int }

type stats = {
  writes : int;
  write_bytes : int;
  remote_writes : int;
  dropped_writes : int;
  polls : int;
}

type t = {
  tp : Simnet.Transport.t;
  self : Simnet.Proc_id.t;
  sched : Scheduler.t;
  mrs : (int, bytes) Hashtbl.t; (* rkey -> registered region *)
  mutable next_rkey : int;
  cq : completion Queue.t;
  activity : Sync.Waitq.t;
  mutable s_writes : int;
  mutable s_write_bytes : int;
  mutable s_remote_writes : int;
  mutable s_dropped : int;
  mutable s_polls : int;
  mutable live : bool;
  mutable interrupts : int;
}

(* Dynamically allocated rkeys live far above the well-known ring /
   credit ranges (see [Ring]) so the two can never collide. *)
let first_dynamic_rkey = 0x100000

(* A write to an unregistered or too-small region is silently dropped,
   as a real HCA would drop a write with a bad rkey: the sender finds
   out at the protocol layer, not from the fabric. *)
let on_arrival t payload =
  if t.live then begin
    match Portals.Wire.decode_view payload with
    | Error _ -> t.s_dropped <- t.s_dropped + 1
    | Ok w -> (
      match Hashtbl.find_opt t.mrs w.Portals.Wire.cookie with
      | None -> t.s_dropped <- t.s_dropped + 1
      | Some region ->
        let len = w.Portals.Wire.length in
        if w.Portals.Wire.offset < 0 || w.Portals.Wire.offset + len > Bytes.length region
        then t.s_dropped <- t.s_dropped + 1
        else begin
          (* HCA DMA into the registered region: no host CPU cycles.
             The landing cost itself (nic_rx_cost + dma_time) was
             already charged by the transport's receive engine. *)
          Bytes.blit w.Portals.Wire.data Portals.Wire.header_size region w.Portals.Wire.offset len;
          t.s_remote_writes <- t.s_remote_writes + 1;
          Sync.Waitq.broadcast t.activity
        end)
  end

let create tp ~id:self =
  let sched = tp.Simnet.Transport.sched in
  let t =
    {
      tp;
      self;
      sched;
      mrs = Hashtbl.create 64;
      next_rkey = first_dynamic_rkey;
      cq = Queue.create ();
      activity = Sync.Waitq.create ~name:"ib-hca" sched;
      s_writes = 0;
      s_write_bytes = 0;
      s_remote_writes = 0;
      s_dropped = 0;
      s_polls = 0;
      live = true;
      interrupts = 0;
    }
  in
  let m = Scheduler.metrics sched in
  let labels = [ ("hca", Format.asprintf "%a" Simnet.Proc_id.pp self) ] in
  let probe name f =
    Metrics.probe m ~labels name (fun () -> float_of_int (f ()))
  in
  probe "ib.writes" (fun () -> t.s_writes);
  probe "ib.remote_writes" (fun () -> t.s_remote_writes);
  probe "ib.dropped_writes" (fun () -> t.s_dropped);
  tp.Simnet.Transport.register self (fun ~src:_ payload -> on_arrival t payload);
  t

let close t =
  if t.live then begin
    t.live <- false;
    t.tp.Simnet.Transport.unregister t.self
  end

let id t = t.self

let reg_mr t ~rkey region =
  if Hashtbl.mem t.mrs rkey then
    invalid_arg (Printf.sprintf "Ibverbs.reg_mr: rkey %#x already bound" rkey);
  Hashtbl.replace t.mrs rkey region

let rereg_mr t ~rkey region = Hashtbl.replace t.mrs rkey region
let dereg_mr t rkey = Hashtbl.remove t.mrs rkey

let alloc_rkey t =
  let k = t.next_rkey in
  t.next_rkey <- k + 1;
  k

(* One-sided write: build the wire image with the payload blitted
   straight out of the source buffer (no intermediate copy), hand it to
   the fabric, and surface the local completion once the doorbell/DMA
   handoff ([send_overhead]) is past — the same local-completion model
   as [Gm.send], but with no receive-side token or event. *)
let rdma_write t ~dst ~rkey ~offset ~src ~src_off ~len ~wr_id =
  let w =
    Portals.Wire.put_request ~ack_requested:false
      ~incarnation:(t.tp.Simnet.Transport.node_incarnation t.self.Simnet.Proc_id.nid)
      ~length:len ~initiator:t.self ~target:dst ~portal_index:0 ~cookie:rkey
      ~match_bits:Portals.Match_bits.zero ~offset ~md_handle:Portals.Handle.none
      ~eq_handle:Portals.Handle.none ~data:Bytes.empty ()
  in
  let img = Portals.Wire.encode_with w ~fill:(fun buf off -> Bytes.blit src src_off buf off len) in
  t.s_writes <- t.s_writes + 1;
  t.s_write_bytes <- t.s_write_bytes + len;
  t.tp.Simnet.Transport.send ~src:t.self ~dst img;
  Scheduler.after t.sched t.tp.Simnet.Transport.send_overhead (fun () ->
      if t.live then begin
        Queue.add (Write_complete { wr_id }) t.cq;
        Sync.Waitq.broadcast t.activity
      end)

let poll_cq t =
  t.s_polls <- t.s_polls + 1;
  Queue.take_opt t.cq

let pending_completions t = Queue.length t.cq

let wake t =
  t.interrupts <- t.interrupts + 1;
  Sync.Waitq.broadcast t.activity

(* Block until anything happened since the call: a completion, a remote
   write landing in any registered region, or a [wake]. Rings have no
   per-message event, so "a write landed" is the only receive signal. *)
let wait_activity t =
  let mark = t.interrupts in
  let writes = t.s_remote_writes in
  let rec loop () =
    if Queue.is_empty t.cq && t.s_remote_writes = writes && t.interrupts = mark
    then begin
      Sync.Waitq.wait t.activity;
      loop ()
    end
  in
  loop ()

let stats t =
  {
    writes = t.s_writes;
    write_bytes = t.s_write_bytes;
    remote_writes = t.s_remote_writes;
    dropped_writes = t.s_dropped;
    polls = t.s_polls;
  }

(* Per-peer polled rings with head/tail flow control — the RDMA-write
   fast path of Liu et al. §4: the sender writes message slots into a
   ring it owns at the receiver; the receiver polls slot sequence
   numbers (no HCA event, no interrupt) and returns credit by RDMA-
   writing its consumed count back into a cell at the sender. All
   buffers are registered at init under rank-derived well-known rkeys —
   the static all-to-all exchange a real MVAPICH job performs at
   startup, without simulating the out-of-band bootstrap. *)
module Ring = struct
  let ring_rkey ~src_rank = 0x10000 + src_rank
  let credit_rkey ~peer_rank = 0x20000 + peer_rank

  (* Slot layout: i32 seq+1 (0 = empty), i32 payload length, payload.
     The +1 bias lets a freshly zeroed ring read as all-empty, and the
     full sequence check (not a flag bit) rejects a slot whose header
     landed from a previous incarnation of the peer. *)
  let slot_header = 8
  let slot_size ~payload = slot_header + payload

  type recv = {
    rv_hca : t;
    rv_buf : bytes;
    rv_slots : int;
    rv_slot_size : int;
    rv_peer : Simnet.Proc_id.t; (* the rank that writes this ring *)
    rv_peer_rank : int;
    rv_my_rank : int;
    mutable rv_tail : int; (* messages consumed, absolute *)
    mutable rv_since_credit : int;
    rv_credit_stage : bytes;
  }

  type send = {
    sv_hca : t;
    sv_dst : Simnet.Proc_id.t;
    sv_dst_rank : int;
    sv_rkey : int; (* our ring at the receiver *)
    sv_slots : int;
    sv_slot_size : int;
    mutable sv_head : int; (* messages written, absolute *)
    sv_credit : bytes; (* receiver RDMA-writes its tail here *)
    sv_stage : bytes; (* slot image composed here before the write *)
  }

  let create_recv hca ~peer ~peer_rank ~my_rank ~slots ~slot_payload =
    let ssize = slot_size ~payload:slot_payload in
    let buf = Bytes.make (slots * ssize) '\000' in
    reg_mr hca ~rkey:(ring_rkey ~src_rank:peer_rank) buf;
    {
      rv_hca = hca;
      rv_buf = buf;
      rv_slots = slots;
      rv_slot_size = ssize;
      rv_peer = peer;
      rv_peer_rank = peer_rank;
      rv_my_rank = my_rank;
      rv_tail = 0;
      rv_since_credit = 0;
      rv_credit_stage = Bytes.create 8;
    }

  let create_send hca ~dst ~dst_rank ~my_rank ~slots ~slot_payload =
    let credit = Bytes.make 8 '\000' in
    reg_mr hca ~rkey:(credit_rkey ~peer_rank:dst_rank) credit;
    let ssize = slot_size ~payload:slot_payload in
    {
      sv_hca = hca;
      sv_dst = dst;
      sv_dst_rank = dst_rank;
      sv_rkey = ring_rkey ~src_rank:my_rank;
      sv_slots = slots;
      sv_slot_size = ssize;
      sv_head = 0;
      sv_credit = credit;
      sv_stage = Bytes.create ssize;
    }

  let credits sv =
    let tail = Int64.to_int (Bytes.get_int64_le sv.sv_credit 0) in
    sv.sv_slots - (sv.sv_head - tail)

  let payload_capacity sv = sv.sv_slot_size - slot_header

  (* Write one message into the next slot of our ring at the receiver.
     Returns false (leaving the ring untouched) when the receiver has
     not consumed far enough — the caller queues and retries after a
     credit update lands. *)
  let try_write sv ~wr_id ~fill ~len =
    if len > payload_capacity sv then
      invalid_arg "Ibverbs.Ring.try_write: message exceeds slot";
    if credits sv <= 0 then false
    else begin
      let seq = sv.sv_head in
      Bytes.set_int32_le sv.sv_stage 0 (Int32.of_int (seq + 1));
      Bytes.set_int32_le sv.sv_stage 4 (Int32.of_int len);
      fill sv.sv_stage slot_header;
      rdma_write sv.sv_hca ~dst:sv.sv_dst ~rkey:sv.sv_rkey
        ~offset:(seq mod sv.sv_slots * sv.sv_slot_size)
        ~src:sv.sv_stage ~src_off:0 ~len:(slot_header + len) ~wr_id;
      sv.sv_head <- seq + 1;
      true
    end

  (* Peek the next unconsumed slot: a view into the ring buffer (the
     caller copies or decodes in place, then [consume]s). *)
  let poll rv =
    rv.rv_hca.s_polls <- rv.rv_hca.s_polls + 1;
    let base = rv.rv_tail mod rv.rv_slots * rv.rv_slot_size in
    let seq = Int32.to_int (Bytes.get_int32_le rv.rv_buf base) in
    if seq = rv.rv_tail + 1 then begin
      let len = Int32.to_int (Bytes.get_int32_le rv.rv_buf (base + 4)) in
      Some (rv.rv_buf, base + slot_header, len)
    end
    else None

  (* Internal credit-return writes complete with wr_id 0; protocol
     layers allocate real wr_ids from 1 up and ignore 0. *)
  let credit_wr_id = 0

  let return_credit rv =
    Bytes.set_int64_le rv.rv_credit_stage 0 (Int64.of_int rv.rv_tail);
    rdma_write rv.rv_hca ~dst:rv.rv_peer
      ~rkey:(credit_rkey ~peer_rank:rv.rv_my_rank)
      ~offset:0 ~src:rv.rv_credit_stage ~src_off:0 ~len:8 ~wr_id:credit_wr_id;
    rv.rv_since_credit <- 0

  (* Retire the slot [poll] just returned. Credit returns are batched —
     one 8-byte write per half ring, not per message — so the fast
     path's per-message cost stays one RDMA write. *)
  let consume rv =
    let base = rv.rv_tail mod rv.rv_slots * rv.rv_slot_size in
    Bytes.set_int32_le rv.rv_buf base 0l;
    rv.rv_tail <- rv.rv_tail + 1;
    rv.rv_since_credit <- rv.rv_since_credit + 1;
    if rv.rv_since_credit >= max 1 (rv.rv_slots / 2) then return_credit rv

  (* Connection teardown/re-establishment after a peer crash: both
     sides reset their view of the pair's rings to empty. *)
  let reset_send sv =
    sv.sv_head <- 0;
    Bytes.fill sv.sv_credit 0 8 '\000'

  let reset_recv rv =
    Bytes.fill rv.rv_buf 0 (Bytes.length rv.rv_buf) '\000';
    rv.rv_tail <- 0;
    rv.rv_since_credit <- 0
end
