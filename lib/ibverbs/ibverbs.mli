(** An ibverbs-style HCA over the simulated fabric: registered memory
    regions addressed by rkey, one-sided RDMA writes, and a polled
    completion queue.

    This is the transport under the paper's third comparison point: an
    interconnect whose only remote primitive is "write these bytes at
    that offset of that registered region". Messages are framed as
    Portals put requests on the wire ({!Wire} is placement-agnostic),
    but the receive side does {e no} matching — the HCA blits into the
    target region and the host discovers data by polling memory, which
    is how Liu et al. build MPI over InfiniBand (MVAPICH) and exactly
    the contrast §5.2 draws with Portals' receiver-managed delivery.

    {!Ring} supplies the fast path those stacks layer on top: per-peer
    sender-written rings with head/tail credit flow control. *)

type completion = Write_complete of { wr_id : int }

type stats = {
  writes : int;  (** RDMA writes issued by this HCA. *)
  write_bytes : int;  (** Payload bytes across those writes. *)
  remote_writes : int;  (** Writes that landed in a local region. *)
  dropped_writes : int;  (** Arrivals with a bad rkey / bounds. *)
  polls : int;  (** CQ and ring polls. *)
}

type t

val create : Simnet.Transport.t -> id:Simnet.Proc_id.t -> t
(** Bring up the HCA for one process: registers its fabric address and
    starts landing remote writes. *)

val close : t -> unit
val id : t -> Simnet.Proc_id.t

val reg_mr : t -> rkey:int -> bytes -> unit
(** Register [bytes] under [rkey]; remote writes naming [rkey] land in
    it. Raises [Invalid_argument] if [rkey] is already bound. *)

val rereg_mr : t -> rkey:int -> bytes -> unit
(** Like {!reg_mr} but replaces any existing binding (connection
    re-establishment after a peer restart). *)

val dereg_mr : t -> int -> unit
(** Unregister an rkey; subsequent writes to it are dropped. *)

val alloc_rkey : t -> int
(** A fresh dynamic rkey, disjoint from {!Ring}'s well-known ranges. *)

val rdma_write :
  t ->
  dst:Simnet.Proc_id.t ->
  rkey:int ->
  offset:int ->
  src:bytes ->
  src_off:int ->
  len:int ->
  wr_id:int ->
  unit
(** One-sided write of [src[src_off..src_off+len)] into the remote
    region [rkey] at [offset]. The payload is blitted once, straight
    into the wire image. A [Write_complete] with [wr_id] appears on the
    local CQ after the send overhead — local completion means the
    source buffer is reusable, not that the data arrived. *)

val poll_cq : t -> completion option
val pending_completions : t -> int

val wait_activity : t -> unit
(** Block the calling fiber until something happened since the call: a
    CQ entry, a remote write landing in any registered region, or a
    {!wake}. Rings raise no per-message event, so a landed write is the
    only receive-side signal. *)

val wake : t -> unit
(** Wake fibers blocked in {!wait_activity} (e.g. on peer failure). *)

val stats : t -> stats

(** The RDMA-write fast path of Liu et al.: the sender owns a ring at
    each receiver and writes message slots into it; the receiver polls
    slot sequence numbers and returns consumption credit by writing its
    tail counter back into a cell at the sender. All buffers use
    rank-derived well-known rkeys, standing in for the static
    all-to-all exchange a real job performs at startup. *)
module Ring : sig
  val ring_rkey : src_rank:int -> int
  (** rkey of the ring that rank [src_rank] writes, at any receiver. *)

  val credit_rkey : peer_rank:int -> int
  (** rkey of the credit cell rank [peer_rank] writes, at any sender. *)

  val slot_header : int
  (** Bytes of slot metadata (sequence + length) ahead of the payload. *)

  type recv
  type send

  val create_recv :
    t ->
    peer:Simnet.Proc_id.t ->
    peer_rank:int ->
    my_rank:int ->
    slots:int ->
    slot_payload:int ->
    recv
  (** Allocate and register the ring that [peer] will write to us. *)

  val create_send :
    t ->
    dst:Simnet.Proc_id.t ->
    dst_rank:int ->
    my_rank:int ->
    slots:int ->
    slot_payload:int ->
    send
  (** Attach to our ring at [dst] and register the credit cell [dst]
      writes back to us. *)

  val credits : send -> int
  (** Slots the receiver is known to have free. *)

  val payload_capacity : send -> int

  val try_write : send -> wr_id:int -> fill:(bytes -> int -> unit) -> len:int -> bool
  (** Write one [len]-byte message (deposited by [fill buf off]) into
      the next slot. Returns [false] without side effects when out of
      credits. Raises [Invalid_argument] if [len] exceeds the slot. *)

  val poll : recv -> (bytes * int * int) option
  (** [(buf, off, len)] view of the next unconsumed message, if any —
      decode or copy in place, then {!consume}. *)

  val credit_wr_id : int
  (** CQ [wr_id] used by internal credit-return writes (0); protocol
      layers allocate real ids from 1 and skip this one. *)

  val consume : recv -> unit
  (** Retire the slot {!poll} returned; batches credit returns (one
      8-byte write per half ring). *)

  val reset_send : send -> unit
  (** Forget all in-flight state (peer crashed): head and credits to
      zero, matching a freshly {!reset_recv}ed ring at the peer. *)

  val reset_recv : recv -> unit
  (** Zero the ring and tail (our side of a re-established pair). *)
end
