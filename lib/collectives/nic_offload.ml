(* NIC-resident collectives: the trees of {!Collectives} compiled into
   pre-armed triggered-operation chains (Ni.ct_arm), so every interior
   hop — token forwarding, reduction combining, result fan-out — runs
   inside the receive path of the simulated NI. The host appears exactly
   twice per collective: once to arm chains and send the first frame,
   once to wake from a counter wait. Between those two points no host
   fiber is scheduled, which is why a busy host CPU does not stretch the
   tree (the property Experiments.Coll measures).

   Wire protocol. Every sequence number (one per collective call, shared
   numbering with the host engine) owns [rounds] pre-armed slots on
   every rank; slot j of sequence s is a Retain match entry with bits
   (seq=s, round=j, src=ignored) over a fixed-size frame buffer, with a
   counting event attached. Frames are [8-byte LE payload length ·
   payload area]; data transfers always move a whole frame, barrier
   tokens move just the 8-byte prefix. Because slots are armed ahead of
   use (window protocol below), a deposit can never race the receiver's
   call: it lands in the pre-armed buffer, bumps the pre-attached
   counter, and the receiver's chains — armed later, with
   fire-immediately semantics — pick it up.

   Window protocol. Slots exist for sequences [retire_lo, arm_hi]; the
   window advances at an internal chain barrier run every [sync_every]
   sequences, which (a) proves every rank is past the retired
   sequences — a rank's own collective completing implies every deposit
   addressed to it for that sequence has already landed, so unlinking is
   drop-free — and (b) re-arms one window ahead. The window must cover
   two full sync periods (enforced in [create]): a fast rank may run a
   whole period ahead of a slow rank that has completed only the
   previous internal barrier. *)

module P = Portals

let ok = P.Errors.ok_exn

type slot = {
  sl_me : P.Handle.me;
  sl_md : P.Handle.md;
  sl_ct : P.Handle.ct;
  sl_buf : bytes;
}

type seq_res = { slots : slot array; done_ct : P.Handle.ct }

type t = {
  ni : P.Ni.t;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  portal_index : int;
  max_payload : int;
  frame : int; (* 8-byte length prefix + max_payload *)
  rounds : int; (* ceil log2 (size); slots per sequence *)
  window : int;
  sync_every : int;
  armed : (int, seq_res) Hashtbl.t;
  mutable seq : int; (* next sequence number *)
  mutable arm_hi : int; (* highest armed sequence *)
  mutable retire_lo : int; (* lowest armed sequence *)
  mutable last_sync : int; (* sequence of the last internal barrier *)
  scratch : bytes;
  scratch_md : P.Handle.md;
  (* Crash-stopped nodes, from the transport's notifications; consulted
     by [barrier ~tolerant]. *)
  down : (Simnet.Proc_id.nid, unit) Hashtbl.t;
}

let rank t = t.my_rank
let size t = Array.length t.ranks

let ceil_log2 n =
  let rec go r = if 1 lsl r >= n then r else go (r + 1) in
  go 0

(* Same naming as Collectives.bits — the two engines share the sequence/
   round/source convention so traces line up; "round" doubles as the
   slot index here. *)
let slot_bits ~seq ~slot ~src =
  let open P.Match_bits in
  logor
    (field ~shift:24 ~width:40 seq)
    (logor (field ~shift:16 ~width:8 slot) (field ~shift:0 ~width:16 src))

let src_ignore = P.Match_bits.field ~shift:0 ~width:16 0xFFFF

let slot_options =
  {
    P.Md.op_put = true;
    op_get = false;
    manage_remote = false;
    truncate = false;
    ack_disable = true;
  }

let arm_seq t s =
  let slots =
    Array.init t.rounds (fun j ->
        let sl_buf = Bytes.create t.frame in
        let sl_me =
          ok ~op:"nic me_attach"
            (P.Ni.me_attach t.ni ~portal_index:t.portal_index
               ~match_id:P.Match_id.any
               ~match_bits:(slot_bits ~seq:s ~slot:j ~src:0)
               ~ignore_bits:src_ignore ~unlink:P.Md.Retain ~pos:`Tail ())
        in
        let sl_md =
          ok ~op:"nic md_attach"
            (P.Ni.md_attach t.ni ~me:sl_me
               (P.Ni.md_spec ~options:slot_options ~threshold:P.Md.Infinite
                  ~unlink:P.Md.Retain sl_buf))
        in
        let sl_ct = ok ~op:"nic ct_alloc" (P.Ni.ct_alloc t.ni) in
        ok ~op:"nic me_set_ct" (P.Ni.me_set_ct t.ni ~me:sl_me ~ct:sl_ct);
        { sl_me; sl_md; sl_ct; sl_buf })
  in
  let done_ct = ok ~op:"nic ct_alloc" (P.Ni.ct_alloc t.ni) in
  Hashtbl.replace t.armed s { slots; done_ct }

let retire_seq t s =
  match Hashtbl.find_opt t.armed s with
  | None -> ()
  | Some res ->
    Array.iter
      (fun sl ->
        ok ~op:"nic me_unlink" (P.Ni.me_unlink t.ni sl.sl_me);
        ok ~op:"nic ct_free" (P.Ni.ct_free t.ni sl.sl_ct))
      res.slots;
    ok ~op:"nic ct_free" (P.Ni.ct_free t.ni res.done_ct);
    Hashtbl.remove t.armed s

let create ni ~ranks ~rank ?(portal_index = 8) ?(max_payload = 1024)
    ?(window = 24) ?(sync_every = 8) () =
  let n = Array.length ranks in
  if rank < 0 || rank >= n then
    invalid_arg "Nic_offload.create: rank out of range";
  if sync_every < 1 then invalid_arg "Nic_offload.create: sync_every < 1";
  (* A fast rank can be a full sync period ahead of a slow one that has
     only completed the previous internal barrier; each period consumes
     at most sync_every + 3 sequences (the call crossing the threshold
     may be an allreduce, worth two, plus the barrier itself). *)
  let window = max window ((2 * sync_every) + 7) in
  let frame = 8 + max_payload in
  let scratch = Bytes.create frame in
  let scratch_md =
    ok ~op:"nic scratch md_bind"
      (P.Ni.md_bind ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:P.Md.Infinite ~unlink:P.Md.Retain scratch))
  in
  let down = Hashtbl.create 4 in
  let tp = P.Ni.transport ni in
  tp.Simnet.Transport.on_crash (fun nid -> Hashtbl.replace down nid ());
  tp.Simnet.Transport.on_restart (fun nid -> Hashtbl.remove down nid);
  let t =
    {
      ni;
      ranks;
      my_rank = rank;
      portal_index;
      max_payload;
      frame;
      rounds = ceil_log2 n;
      window;
      sync_every;
      armed = Hashtbl.create 64;
      seq = 0;
      arm_hi = -1;
      retire_lo = 0;
      last_sync = 0;
      scratch;
      scratch_md;
      down;
    }
  in
  if n > 1 then begin
    for s = 0 to window - 1 do
      arm_seq t s
    done;
    t.arm_hi <- window - 1
  end;
  t

let ni t = t.ni

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  if s > t.arm_hi then
    failwith "Nic_offload: sequence past the armed window (protocol bug)";
  s

let find_res t s =
  match Hashtbl.find_opt t.armed s with
  | Some r -> r
  | None -> failwith "Nic_offload: sequence not armed (window bug)"

let chain_op t ~dst ~seq ~slot =
  P.Ni.op ~target:t.ranks.(dst) ~portal_index:t.portal_index
    ~match_bits:(slot_bits ~seq ~slot ~src:t.my_rank)
    ()

(* Host-initiated send from the scratch descriptor: the NI copies the
   payload into the wire image synchronously, so the scratch is free
   again on return. *)
let put_scratch t ~dst ~seq ~slot ~length =
  ok ~op:"nic put"
    (P.Ni.put t.ni ~md:t.scratch_md ~ack:false ~length
       (chain_op t ~dst ~seq ~slot))

(* --- barrier ---------------------------------------------------------- *)

(* Dissemination with the forwarding folded into chains: the host sends
   only the round-0 token to rank+1; the arrival of the round-k token
   (from rank - 2^k) fires the round-(k+1) token to rank + 2^(k+1) and
   bumps the completion counter. Waiting for all [rounds] tokens (not
   just the last) guarantees the retirement invariant: completion means
   every deposit addressed here for this sequence has landed. *)
let alive t r = not (Hashtbl.mem t.down t.ranks.(r).Simnet.Proc_id.nid)

let run_barrier ?(tolerant = false) t seq =
  let n = size t in
  let res = find_res t seq in
  for k = 0 to t.rounds - 1 do
    let forward =
      if k + 1 < t.rounds then
        [
          P.Ni.Triggered_put
            {
              md = res.slots.(k).sl_md;
              ack = false;
              length = Some 8;
              op =
                chain_op t
                  ~dst:((t.my_rank + (1 lsl (k + 1))) mod n)
                  ~seq ~slot:(k + 1);
            };
        ]
      else []
    in
    ok ~op:"nic ct_arm"
      (P.Ni.ct_arm t.ni ~ct:res.slots.(k).sl_ct ~threshold:1
         (forward @ [ P.Ni.Triggered_ct_inc { ct = res.done_ct; amount = 1 } ]))
  done;
  Bytes.set_int64_le t.scratch 0 0L;
  put_scratch t ~dst:((t.my_rank + 1) mod n) ~seq ~slot:0 ~length:8;
  (* Tolerant mode: a crash-stopped sender's token can never arrive, so
     bump its slot counter from the host — the armed chain fires exactly
     as if the token had landed (forwarding included), and survivors are
     released. Sends towards dead nodes just drop at the fabric. *)
  if tolerant then
    for k = 0 to t.rounds - 1 do
      let sender = (t.my_rank - (1 lsl k) + n) mod n in
      if not (alive t sender) then
        ok ~op:"nic ct_inc" (P.Ni.ct_inc t.ni res.slots.(k).sl_ct 1)
    done;
  ignore (ok ~op:"nic ct_wait" (P.Ni.ct_wait t.ni res.done_ct ~threshold:t.rounds))

(* --- window maintenance ----------------------------------------------- *)

let internal_sync ?tolerant t =
  let b = next_seq t in
  run_barrier ?tolerant t b;
  t.last_sync <- b;
  for s = t.retire_lo to b do
    retire_seq t s
  done;
  t.retire_lo <- b + 1;
  let hi = b + t.window - 1 in
  for s = t.arm_hi + 1 to hi do
    arm_seq t s
  done;
  t.arm_hi <- hi

let after_call ?tolerant t =
  if size t > 1 && t.seq - t.last_sync >= t.sync_every then
    internal_sync ?tolerant t

(* --- broadcast -------------------------------------------------------- *)

let frame_payload buf =
  let len = Int64.to_int (Bytes.get_int64_le buf 0) in
  Bytes.sub buf 8 len

let load_scratch t payload =
  let len = Bytes.length payload in
  if len > t.max_payload then
    invalid_arg "Nic_offload: payload larger than max_payload";
  Bytes.set_int64_le t.scratch 0 (Int64.of_int len);
  Bytes.blit payload 0 t.scratch 8 len;
  (* Zero the tail so forwarded whole-frame copies are deterministic. *)
  Bytes.fill t.scratch (8 + len) (t.max_payload - len) '\000'

(* Binomial: virtual rank v hears from v - 2^j (j = highest set bit) and
   feeds v + 2^k for k > j. Every receiver's frame lands in its slot 0;
   the arrival fires the puts to all of its children in one chain. *)
let run_bcast t seq ~root payload =
  let n = size t in
  let res = find_res t seq in
  let vr = (t.my_rank - root + n) mod n in
  let real v = (v + root) mod n in
  let children first_k =
    let rec go k acc =
      let mask = 1 lsl k in
      if mask >= n then List.rev acc
      else if vr < mask && vr + mask < n then go (k + 1) (real (vr + mask) :: acc)
      else go (k + 1) acc
    in
    go first_k []
  in
  if vr = 0 then begin
    load_scratch t payload;
    List.iter
      (fun child -> put_scratch t ~dst:child ~seq ~slot:0 ~length:t.frame)
      (children 0);
    payload
  end
  else begin
    let rec log2_floor acc v = if v <= 1 then acc else log2_floor (acc + 1) (v lsr 1) in
    let first_round = log2_floor 0 vr + 1 in
    let forwards =
      List.map
        (fun child ->
          P.Ni.Triggered_put
            {
              md = res.slots.(0).sl_md;
              ack = false;
              length = None;
              op = chain_op t ~dst:child ~seq ~slot:0;
            })
        (children first_round)
    in
    ok ~op:"nic ct_arm"
      (P.Ni.ct_arm t.ni ~ct:res.slots.(0).sl_ct ~threshold:1
         (forwards @ [ P.Ni.Triggered_ct_inc { ct = res.done_ct; amount = 1 } ]));
    ignore (ok ~op:"nic ct_wait" (P.Ni.ct_wait t.ni res.done_ct ~threshold:1));
    frame_payload res.slots.(0).sl_buf
  end

(* --- reduce ----------------------------------------------------------- *)

(* Binomial, mirroring Collectives.reduce exactly: child vr sends its
   accumulator to vr - 2^j (j = lowest set bit) into the parent's slot j;
   the parent folds children in ascending mask order — the same order the
   host engine combines in, so floating-point results are byte-identical.
   The whole fold + forward is ONE chain gated on a fan-in counter that
   each child slot bumps; a leaf's chain has threshold 0 and fires at
   arm time. *)
let run_reduce t seq ~root ~op payload =
  let n = size t in
  let res = find_res t seq in
  let vr = (t.my_rank - root + n) mod n in
  let real v = (v + root) mod n in
  (* Children (slot per mask) and parent from the host engine's loop. *)
  let rec classify mask k children =
    if mask >= n then (List.rev children, None)
    else if vr land mask <> 0 then (List.rev children, Some (real (vr - mask), k))
    else
      classify (mask * 2) (k + 1)
        (if vr + mask < n then k :: children else children)
  in
  let children, parent = classify 1 0 [] in
  let acc_buf = Bytes.create t.frame in
  let len = Bytes.length payload in
  if len > t.max_payload then
    invalid_arg "Nic_offload: payload larger than max_payload";
  Bytes.set_int64_le acc_buf 0 (Int64.of_int len);
  Bytes.blit payload 0 acc_buf 8 len;
  let acc_md =
    ok ~op:"nic acc md_bind"
      (P.Ni.md_bind t.ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:P.Md.Infinite ~unlink:P.Md.Retain acc_buf))
  in
  (* Frame-aware fold: combine the slot's payload region into the
     accumulator's, leaving the accumulator's length untouched (the host
     engine's in-place [op acc contribution] contract). *)
  let combine_frames dst src =
    let la = Int64.to_int (Bytes.get_int64_le dst 0) in
    let ls = Int64.to_int (Bytes.get_int64_le src 0) in
    let a = Bytes.sub dst 8 la and s = Bytes.sub src 8 ls in
    op a s;
    Bytes.blit a 0 dst 8 la
  in
  let sum_ct = ok ~op:"nic ct_alloc" (P.Ni.ct_alloc t.ni) in
  List.iter
    (fun k ->
      ok ~op:"nic ct_arm"
        (P.Ni.ct_arm t.ni ~ct:res.slots.(k).sl_ct ~threshold:1
           [ P.Ni.Triggered_ct_inc { ct = sum_ct; amount = 1 } ]))
    children;
  let folds =
    List.map
      (fun k ->
        P.Ni.Triggered_combine
          { dst = acc_md; src = res.slots.(k).sl_md; f = combine_frames })
      children
  in
  let forward =
    match parent with
    | None -> []
    | Some (p, k) ->
      [
        P.Ni.Triggered_put
          {
            md = acc_md;
            ack = false;
            length = None;
            op = chain_op t ~dst:p ~seq ~slot:k;
          };
      ]
  in
  ok ~op:"nic ct_arm"
    (P.Ni.ct_arm t.ni ~ct:sum_ct
       ~threshold:(List.length children)
       (folds @ forward
       @ [ P.Ni.Triggered_ct_inc { ct = res.done_ct; amount = 1 } ]));
  ignore (ok ~op:"nic ct_wait" (P.Ni.ct_wait t.ni res.done_ct ~threshold:1));
  let result = if parent = None then Some (frame_payload acc_buf) else None in
  ok ~op:"nic ct_free" (P.Ni.ct_free t.ni sum_ct);
  ok ~op:"nic md_unlink" (P.Ni.md_unlink t.ni acc_md);
  result

(* --- public operations ------------------------------------------------ *)

let barrier ?(tolerant = false) t =
  if size t > 1 then begin
    let seq = next_seq t in
    run_barrier ~tolerant t seq;
    after_call ~tolerant t
  end

let bcast t ~root payload =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Nic_offload.bcast: bad root";
  if n = 1 then payload
  else begin
    let seq = next_seq t in
    let data = run_bcast t seq ~root payload in
    after_call t;
    data
  end

let reduce t ~root ~op payload =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Nic_offload.reduce: bad root";
  if n = 1 then Some (Bytes.copy payload)
  else begin
    let seq = next_seq t in
    let r = run_reduce t seq ~root ~op payload in
    after_call t;
    r
  end

let allreduce t ~op payload =
  let n = size t in
  if n = 1 then Bytes.copy payload
  else begin
    let seq_r = next_seq t in
    let r = run_reduce t seq_r ~root:0 ~op payload in
    let seq_b = next_seq t in
    let data =
      run_bcast t seq_b ~root:0 (match r with Some a -> a | None -> Bytes.empty)
    in
    after_call t;
    data
  end
