(** The signature both collective engines satisfy.

    Two implementations exist, selectable at run time (the CLIs expose
    the choice as [--collectives host|nic]):

    - {!Collectives} ("host"): the reference engine. Every tree hop is a
      host fiber receiving a message, combining buffers on the host CPU
      and sending the next hop — the conventional implementation the
      paper's §2 host-bypass argument measures against.
    - {!Nic_offload} ("nic"): the same trees compiled into pre-armed
      triggered-operation chains ({!Portals.Ni.ct_arm}), so every
      interior hop runs inside the receive path of the simulated NI and
      no host fiber is scheduled between the first send and the final
      counter wake.

    Both must produce {e byte-identical} results for the same ranks,
    roots, payloads and reduction operators — the conformance suite in
    [test/collectives] instantiates one functor over each and checks
    exactly that, including under multi-domain runs. *)

module type S = sig
  type t

  val rank : t -> int
  (** This member's rank in [0, size). *)

  val size : t -> int
  (** Number of participants. *)

  val barrier : ?tolerant:bool -> t -> unit
  (** Block until every member has entered the barrier. With [tolerant]
      (default false) exchanges with crash-stopped ranks are skipped —
      the shutdown best-effort contract of [Mpi.barrier ~tolerant] — so
      survivors are released instead of waiting for tokens that can
      never arrive. *)

  val bcast : t -> root:int -> bytes -> bytes
  (** Every member returns a copy of [root]'s buffer; the argument is
      ignored on non-roots. *)

  val reduce :
    t -> root:int -> op:(bytes -> bytes -> unit) -> bytes -> bytes option
  (** Combine every member's buffer with [op] (see the root-only result
      contract documented on {!Collectives.reduce}); [Some result] at
      [root], [None] elsewhere. *)

  val allreduce : t -> op:(bytes -> bytes -> unit) -> bytes -> bytes
  (** [reduce] to rank 0 followed by [bcast]: every member returns the
      combined buffer. *)
end
