(** NIC-resident collectives over triggered-operation chains.

    This engine runs the same dissemination barrier, binomial broadcast
    and binomial reduction as the host-driven {!Collectives}, but
    compiles every interior tree hop into a pre-armed chain
    ({!Portals.Ni.ct_arm}): a counting event attached to a match entry
    fires forwarding puts, NIC-local combines and counter bumps the
    moment the awaited deposit commits — inside the simulated NI's
    receive path, with {e no host fiber scheduled between tree hops}.
    The host touches a collective exactly twice: arming the chains and
    sending the first frame, then waking from {!Portals.Ni.ct_wait}.
    This is the paper's §2/Fig. 6 host-bypass argument applied to
    collective trees (after Yu et al.'s NIC-based collectives): a busy
    host CPU stretches a host-driven tree at every hop, and stretches an
    offloaded tree not at all — [Experiments.Coll] measures exactly that
    contrast.

    {b Resource model.} Each collective call consumes one sequence
    number ([allreduce] two). Every rank pre-arms, per sequence in a
    sliding window, one fixed-size frame slot per tree round: a Retain
    match entry (bits = sequence · round, source ignored) over an
    [8-byte length prefix + max_payload] buffer with a counting event
    attached. Pre-arming means an early peer's deposit can never race
    the local call — it lands in the buffer and bumps the counter, and
    the chains armed later pick it up via arm-time firing. The window
    advances at an internal chain barrier every [sync_every] sequences,
    which also proves retirement is drop-free (a completed collective
    implies every deposit addressed here for its sequence has landed).

    {b Equivalence.} Results are byte-identical to {!Collectives} for
    the same ranks, roots, payloads and operators — reductions fold
    children in the same ascending-mask order, so even floating-point
    rounding matches. The conformance suite in [test/collectives] checks
    both engines through one functor over {!Coll_intf.S}. *)

type t

val create :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  ?max_payload:int ->
  ?window:int ->
  ?sync_every:int ->
  unit ->
  t
(** Join a NIC-offloaded collective group of [Array.length ranks]
    members as [ranks.(rank)]; every member must create its endpoint
    with the same parameters before any traffic flows (all ranks
    creating at simulated time zero, before blocking, satisfies this).

    [portal_index] (default 8) is the portal table entry the slot match
    entries live on — keep it clear of the host engine's (6).
    [max_payload] (default 1024) bounds every bcast/reduce payload; the
    fixed frame moved between NICs is [8 + max_payload] bytes.
    [window] (default 24) and [sync_every] (default 8) tune the
    pre-armed sequence window; [window] is clamped up to cover two full
    sync periods, the minimum that makes a fast rank's traffic always
    land on armed slots. *)

val ni : t -> Portals.Ni.t

val rank : t -> int
val size : t -> int

val barrier : ?tolerant:bool -> t -> unit
(** Dissemination barrier: the host sends one round-0 token and waits
    for a counter to reach the round count; every round-k arrival fires
    the round-(k+1) token from inside the receive path. With [tolerant]
    (default false), slots whose sender is crash-stopped are bumped from
    the host — the armed chain fires as if the token had landed — so
    survivors are released ({!Coll_intf.S.barrier}'s shutdown
    contract). *)

val bcast : t -> root:int -> bytes -> bytes
(** Binomial broadcast of [root]'s payload (ignored elsewhere); each
    receiver's arrival fires the puts to all its children in one chain. *)

val reduce :
  t -> root:int -> op:(bytes -> bytes -> unit) -> bytes -> bytes option
(** Binomial reduction with NIC-local combining (one
    [Triggered_combine] per child, ascending-mask order, then a forward
    put). Root-only result, same contract as {!Collectives.reduce}:
    [Some combined] at [root], [None] elsewhere. [op acc contribution]
    must fold [contribution] into [acc] in place. *)

val allreduce : t -> op:(bytes -> bytes -> unit) -> bytes -> bytes
(** [reduce] to rank 0 chained into a [bcast] — two sequences, both
    offloaded. *)
