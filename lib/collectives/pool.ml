module P = Portals

type slab = {
  s_idx : int;
  s_buffer : bytes;
  mutable s_meh : P.Handle.me;
  mutable s_mdh : P.Handle.md;
  mutable s_outstanding : int;
}

type pooled = { p_bits : P.Match_bits.t; p_slab : slab; p_off : int; p_len : int }

type t = {
  pool_ni : P.Ni.t;
  portal_index : int;
  slab_size : int;
  eqh : P.Handle.eq;
  eqq : P.Event.Queue.t;
  slabs : slab array;
  pooled : pooled Queue.t;
}

let ok_exn = P.Errors.ok_exn

let slab_options =
  {
    P.Md.op_put = true;
    op_get = false;
    manage_remote = false;
    truncate = false;
    ack_disable = true;
  }

let attach_slab t slab =
  let meh =
    ok_exn ~op:"pool me_attach"
      (P.Ni.me_attach t.pool_ni ~portal_index:t.portal_index
         ~match_id:P.Match_id.any ~match_bits:P.Match_bits.zero
         ~ignore_bits:P.Match_bits.all_ones ~unlink:P.Md.Retain ~pos:`Tail ())
  in
  let mdh =
    ok_exn ~op:"pool md_attach"
      (P.Ni.md_attach t.pool_ni ~me:meh
         (P.Ni.md_spec ~options:slab_options ~threshold:P.Md.Infinite
            ~unlink:P.Md.Retain ~eq:t.eqh
            ~user_ptr:(-(slab.s_idx + 1))
            slab.s_buffer))
  in
  slab.s_meh <- meh;
  slab.s_mdh <- mdh

let create ni ~portal_index ?(slab_size = 131_072) ?(slab_count = 4)
    ?(eq_capacity = 4096) () =
  let eqh = ok_exn ~op:"pool eq_alloc" (P.Ni.eq_alloc ni ~capacity:eq_capacity) in
  let eqq = ok_exn ~op:"pool eq" (P.Ni.eq ni eqh) in
  let t =
    {
      pool_ni = ni;
      portal_index;
      slab_size;
      eqh;
      eqq;
      slabs =
        Array.init slab_count (fun s_idx ->
            {
              s_idx;
              s_buffer = Bytes.create slab_size;
              s_meh = P.Handle.none;
              s_mdh = P.Handle.none;
              s_outstanding = 0;
            });
      pooled = Queue.create ();
    }
  in
  Array.iter (fun slab -> attach_slab t slab) t.slabs;
  t

let ni t = t.pool_ni

let send t ~dst ~bits payload =
  let mdh =
    ok_exn ~op:"pool md_bind"
      (P.Ni.md_bind t.pool_ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink payload))
  in
  ok_exn ~op:"pool put"
    (P.Ni.put t.pool_ni ~md:mdh ~ack:false
       (P.Ni.op ~target:dst ~portal_index:t.portal_index ~match_bits:bits ()))

let maybe_rearm t slab =
  if slab.s_outstanding = 0 then begin
    match P.Ni.md_local_offset t.pool_ni slab.s_mdh with
    | Error _ -> ()
    | Ok used ->
      if used > t.slab_size / 2 then begin
        ok_exn ~op:"pool rearm" (P.Ni.me_unlink t.pool_ni slab.s_meh);
        attach_slab t slab
      end
  end

let drain t =
  let rec go () =
    match P.Event.Queue.get t.eqq with
    | None -> ()
    | Some ev ->
      (match ev.P.Event.kind with
      | P.Event.Put when ev.P.Event.md_user_ptr < 0 ->
        let slab = t.slabs.(-ev.P.Event.md_user_ptr - 1) in
        slab.s_outstanding <- slab.s_outstanding + 1;
        Queue.add
          {
            p_bits = ev.P.Event.match_bits;
            p_slab = slab;
            p_off = ev.P.Event.offset;
            p_len = ev.P.Event.mlength;
          }
          t.pooled
      | P.Event.Put | P.Event.Get | P.Event.Reply | P.Event.Ack | P.Event.Sent ->
        ());
      go ()
  in
  go ()

let take t ~bits =
  let n = Queue.length t.pooled in
  let found = ref None in
  for _ = 1 to n do
    let p = Queue.pop t.pooled in
    if !found = None && P.Match_bits.equal p.p_bits bits then found := Some p
    else Queue.add p t.pooled
  done;
  !found

let rec recv t ~bits =
  drain t;
  match take t ~bits with
  | Some p ->
    let data = Bytes.sub p.p_slab.s_buffer p.p_off p.p_len in
    p.p_slab.s_outstanding <- p.p_slab.s_outstanding - 1;
    maybe_rearm t p.p_slab;
    data
  | None ->
    let ev = P.Event.Queue.wait t.eqq in
    (* Put it back through the normal dispatch path. *)
    (match ev.P.Event.kind with
    | P.Event.Put when ev.P.Event.md_user_ptr < 0 ->
      let slab = t.slabs.(-ev.P.Event.md_user_ptr - 1) in
      slab.s_outstanding <- slab.s_outstanding + 1;
      Queue.add
        {
          p_bits = ev.P.Event.match_bits;
          p_slab = slab;
          p_off = ev.P.Event.offset;
          p_len = ev.P.Event.mlength;
        }
        t.pooled
    | P.Event.Put | P.Event.Get | P.Event.Reply | P.Event.Ack | P.Event.Sent -> ());
    recv t ~bits

let pending t =
  drain t;
  Queue.length t.pooled

let largest_message t = t.slab_size
