module P = Portals

type slab = {
  s_idx : int;
  s_buffer : bytes;
  mutable s_meh : P.Handle.me;
  mutable s_mdh : P.Handle.md;
  mutable s_outstanding : int;
}

type pooled = { p_slab : slab; p_off : int; p_len : int }

type t = {
  pool_ni : P.Ni.t;
  portal_index : int;
  slab_size : int;
  eqh : P.Handle.eq;
  eqq : P.Event.Queue.t;
  slabs : slab array;
  (* Arrived-but-unclaimed messages, keyed by their match bits. [recv]
     claims by exact bits, so a claim is one table probe and a queue pop;
     the previous representation (one queue rotated end-to-end per claim)
     cost O(pending) per receive, quadratic over a collective's fan-in.
     Per-key arrival order is preserved by the per-key queues. *)
  pooled : (P.Match_bits.t, pooled Queue.t) Hashtbl.t;
  mutable pending_count : int;
  (* Send-side scratch: one persistent descriptor over [scratch_buf],
     reused by every [send] via a put-region of the payload's length.
     The NI copies payload into the wire image synchronously inside
     [put], so the scratch is free again as soon as the call returns —
     no per-message md_bind/unlink churn, and with no event queue and an
     infinite threshold the NI elides the SENT completion too. *)
  scratch_buf : bytes;
  scratch_mdh : P.Handle.md;
}

let ok_exn = P.Errors.ok_exn

let slab_options =
  {
    P.Md.op_put = true;
    op_get = false;
    manage_remote = false;
    truncate = false;
    ack_disable = true;
  }

let attach_slab t slab =
  let meh =
    ok_exn ~op:"pool me_attach"
      (P.Ni.me_attach t.pool_ni ~portal_index:t.portal_index
         ~match_id:P.Match_id.any ~match_bits:P.Match_bits.zero
         ~ignore_bits:P.Match_bits.all_ones ~unlink:P.Md.Retain ~pos:`Tail ())
  in
  let mdh =
    ok_exn ~op:"pool md_attach"
      (P.Ni.md_attach t.pool_ni ~me:meh
         (P.Ni.md_spec ~options:slab_options ~threshold:P.Md.Infinite
            ~unlink:P.Md.Retain ~eq:t.eqh
            ~user_ptr:(-(slab.s_idx + 1))
            slab.s_buffer))
  in
  slab.s_meh <- meh;
  slab.s_mdh <- mdh

let create ni ~portal_index ?(slab_size = 131_072) ?(slab_count = 4)
    ?(eq_capacity = 4096) () =
  let eqh = ok_exn ~op:"pool eq_alloc" (P.Ni.eq_alloc ni ~capacity:eq_capacity) in
  let eqq = ok_exn ~op:"pool eq" (P.Ni.eq ni eqh) in
  let scratch_buf = Bytes.create slab_size in
  let scratch_mdh =
    ok_exn ~op:"pool scratch md_bind"
      (P.Ni.md_bind ni
         (P.Ni.md_spec
            ~options:{ P.Md.default_options with P.Md.ack_disable = true }
            ~threshold:P.Md.Infinite ~unlink:P.Md.Retain scratch_buf))
  in
  let t =
    {
      pool_ni = ni;
      portal_index;
      slab_size;
      eqh;
      eqq;
      slabs =
        Array.init slab_count (fun s_idx ->
            {
              s_idx;
              s_buffer = Bytes.create slab_size;
              s_meh = P.Handle.none;
              s_mdh = P.Handle.none;
              s_outstanding = 0;
            });
      pooled = Hashtbl.create 32;
      pending_count = 0;
      scratch_buf;
      scratch_mdh;
    }
  in
  Array.iter (fun slab -> attach_slab t slab) t.slabs;
  t

let ni t = t.pool_ni

let send t ~dst ~bits payload =
  let len = Bytes.length payload in
  if len > Bytes.length t.scratch_buf then
    invalid_arg "Pool.send: payload larger than the pool's slab size";
  Bytes.blit payload 0 t.scratch_buf 0 len;
  ok_exn ~op:"pool put"
    (P.Ni.put t.pool_ni ~md:t.scratch_mdh ~ack:false ~length:len
       (P.Ni.op ~target:dst ~portal_index:t.portal_index ~match_bits:bits ()))

let maybe_rearm t slab =
  if slab.s_outstanding = 0 then begin
    match P.Ni.md_local_offset t.pool_ni slab.s_mdh with
    | Error _ -> ()
    | Ok used ->
      if used > t.slab_size / 2 then begin
        ok_exn ~op:"pool rearm" (P.Ni.me_unlink t.pool_ni slab.s_meh);
        attach_slab t slab
      end
  end

let dispatch t ev =
  match ev.P.Event.kind with
  (* A TRIGGERED deposit is a put fired by a remote chain — same data
     landing, different provenance. *)
  | (P.Event.Put | P.Event.Triggered) when ev.P.Event.md_user_ptr < 0 ->
    let slab = t.slabs.(-ev.P.Event.md_user_ptr - 1) in
    slab.s_outstanding <- slab.s_outstanding + 1;
    let q =
      match Hashtbl.find_opt t.pooled ev.P.Event.match_bits with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.pooled ev.P.Event.match_bits q;
        q
    in
    Queue.add
      {
        p_slab = slab;
        p_off = ev.P.Event.offset;
        p_len = ev.P.Event.mlength;
      }
      q;
    t.pending_count <- t.pending_count + 1
  | P.Event.Put | P.Event.Get | P.Event.Atomic | P.Event.Reply | P.Event.Ack
  | P.Event.Sent | P.Event.Triggered -> ()

let drain t =
  let rec go () =
    match P.Event.Queue.get t.eqq with
    | None -> ()
    | Some ev ->
      dispatch t ev;
      go ()
  in
  go ()

let take t ~bits =
  match Hashtbl.find_opt t.pooled bits with
  | None -> None
  | Some q ->
    let p = Queue.pop q in
    if Queue.is_empty q then Hashtbl.remove t.pooled bits;
    t.pending_count <- t.pending_count - 1;
    Some p

let rec recv t ~bits =
  drain t;
  match take t ~bits with
  | Some p ->
    let data = Bytes.sub p.p_slab.s_buffer p.p_off p.p_len in
    p.p_slab.s_outstanding <- p.p_slab.s_outstanding - 1;
    maybe_rearm t p.p_slab;
    data
  | None ->
    (* Block until something arrives, then go through normal dispatch. *)
    dispatch t (P.Event.Queue.wait t.eqq);
    recv t ~bits

let pending t =
  drain t;
  t.pending_count

let largest_message t = t.slab_size
