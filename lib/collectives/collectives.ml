module Pool = Pool
module Coll_intf = Coll_intf
module P = Portals

type t = {
  pool : Pool.t;
  ranks : Simnet.Proc_id.t array;
  my_rank : int;
  mutable seq : int;
  (* When a host CPU is supplied, every protocol hop charges [host_step]
     of compute to it — the per-message host work (matching, combining,
     re-sending) a host-driven tree cannot avoid. The charge serializes
     behind whatever else the host is computing, which is exactly the
     degradation the NIC-offload engine exists to remove; leaving
     [host_cpu] unset keeps the engine's timing identical to before the
     knob existed. *)
  host_cpu : Sim_engine.Cpu.t option;
  host_step : Sim_engine.Time_ns.t;
  (* Nodes currently crash-stopped, maintained from the transport's
     crash/restart notifications — what [barrier ~tolerant] consults to
     skip exchanges with dead ranks. *)
  down : (Simnet.Proc_id.nid, unit) Hashtbl.t;
}

(* Collective steps are short (reduction fragments, barrier tokens), so
   the per-rank eager pool is deliberately small: the Pool defaults
   (4 x 128 KiB slabs, EQ depth 4096) cost half a megabyte of zeroed
   buffer per rank, which dominates world setup in the 1024-node scaling
   sweeps. Callers moving large bcast/alltoall payloads can raise
   [slab_size] (see {!Pool.largest_message}). *)
let create ni ~ranks ~rank ?(portal_index = 6) ?(slab_size = 16_384)
    ?(slab_count = 2) ?(eq_capacity = 1024) ?host_cpu
    ?(host_step = Sim_engine.Time_ns.ns 2_000) () =
  if rank < 0 || rank >= Array.length ranks then
    invalid_arg "Collectives.create: rank out of range";
  let down = Hashtbl.create 4 in
  let tp = P.Ni.transport ni in
  tp.Simnet.Transport.on_crash (fun nid -> Hashtbl.replace down nid ());
  tp.Simnet.Transport.on_restart (fun nid -> Hashtbl.remove down nid);
  {
    pool = Pool.create ni ~portal_index ~slab_size ~slab_count ~eq_capacity ();
    ranks;
    my_rank = rank;
    seq = 0;
    host_cpu;
    host_step;
    down;
  }

let rank t = t.my_rank
let size t = Array.length t.ranks

(* Message naming: sequence number (which collective call), round within
   the algorithm, and sending rank. *)
let bits ~seq ~round ~src =
  let open P.Match_bits in
  logor
    (field ~shift:24 ~width:40 seq)
    (logor (field ~shift:16 ~width:8 round) (field ~shift:0 ~width:16 src))

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let charge t =
  match t.host_cpu with
  | None -> ()
  | Some cpu -> Sim_engine.Cpu.compute cpu t.host_step

let send t ~seq ~round ~dst payload =
  charge t;
  Pool.send t.pool ~dst:t.ranks.(dst) ~bits:(bits ~seq ~round ~src:t.my_rank) payload

let recv t ~seq ~round ~src =
  let data = Pool.recv t.pool ~bits:(bits ~seq ~round ~src) in
  charge t;
  data

let alive t r = not (Hashtbl.mem t.down t.ranks.(r).Simnet.Proc_id.nid)

let barrier ?(tolerant = false) t =
  let n = size t in
  if n > 1 then begin
    let seq = next_seq t in
    let rec go round step =
      if step < n then begin
        (* Tolerant mode (shutdown best effort, the Mpi.barrier contract):
           skip exchanges with crash-stopped ranks instead of blocking on
           tokens that can never arrive. *)
        let dst = (t.my_rank + step) mod n
        and src = (t.my_rank - step + n) mod n in
        if (not tolerant) || alive t dst then
          send t ~seq ~round ~dst Bytes.empty;
        if (not tolerant) || alive t src then
          ignore (recv t ~seq ~round ~src);
        go (round + 1) (step * 2)
      end
    in
    go 0 1
  end

let log2_floor v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let highest_bit v =
  if v = 0 then 0 else 1 lsl log2_floor v

(* Binomial broadcast: virtual rank v receives from v - 2^j (j = position
   of v's highest set bit) in round j, then feeds rounds k > j. *)
let bcast t ~root payload =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Collectives.bcast: bad root";
  let seq = next_seq t in
  let vr = (t.my_rank - root + n) mod n in
  let real v = (v + root) mod n in
  let data =
    if vr = 0 then payload
    else begin
      let top = highest_bit vr in
      recv t ~seq ~round:(log2_floor top) ~src:(real (vr - top))
    end
  in
  let first_round = if vr = 0 then 0 else log2_floor (highest_bit vr) + 1 in
  let rec fan k =
    let mask = 1 lsl k in
    if mask < n then begin
      if vr < mask && vr + mask < n then send t ~seq ~round:k ~dst:(real (vr + mask)) data;
      fan (k + 1)
    end
  in
  fan first_round;
  data

(* Binomial reduce: at the first set bit of the virtual rank, send the
   accumulated value toward the root; below it, absorb children. *)
let reduce t ~root ~op payload =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Collectives.reduce: bad root";
  let seq = next_seq t in
  let vr = (t.my_rank - root + n) mod n in
  let real v = (v + root) mod n in
  let acc = Bytes.copy payload in
  let rec go mask round =
    if mask < n then
      if vr land mask <> 0 then begin
        send t ~seq ~round ~dst:(real (vr - mask)) acc;
        false
      end
      else begin
        if vr + mask < n then begin
          let contribution = recv t ~seq ~round ~src:(real (vr + mask)) in
          op acc contribution
        end;
        go (mask * 2) (round + 1)
      end
    else true
  in
  if go 1 0 then Some acc else None

let allreduce t ~op payload =
  match reduce t ~root:0 ~op payload with
  | Some acc -> bcast t ~root:0 acc
  | None -> bcast t ~root:0 Bytes.empty

let gather t ~root payload =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Collectives.gather: bad root";
  let seq = next_seq t in
  if t.my_rank = root then begin
    let out = Array.make n Bytes.empty in
    out.(root) <- payload;
    (* Claim contributions in whatever order they arrive; recv is keyed
       by source so the indexing is exact. *)
    for src = 0 to n - 1 do
      if src <> root then out.(src) <- recv t ~seq ~round:0 ~src
    done;
    Some out
  end
  else begin
    send t ~seq ~round:0 ~dst:root payload;
    None
  end

let scatter t ~root pieces =
  let n = size t in
  if root < 0 || root >= n then invalid_arg "Collectives.scatter: bad root";
  let seq = next_seq t in
  if t.my_rank = root then begin
    match pieces with
    | None -> invalid_arg "Collectives.scatter: root must supply pieces"
    | Some pieces ->
      if Array.length pieces <> n then
        invalid_arg "Collectives.scatter: need one piece per rank";
      for dst = 0 to n - 1 do
        if dst <> root then send t ~seq ~round:0 ~dst pieces.(dst)
      done;
      pieces.(root)
  end
  else recv t ~seq ~round:0 ~src:root

(* Ring allgather: in step s, pass along the chunk received in step s-1;
   after n-1 steps everyone holds every chunk. *)
let allgather t payload =
  let n = size t in
  let seq = next_seq t in
  let out = Array.make n Bytes.empty in
  out.(t.my_rank) <- payload;
  let right = (t.my_rank + 1) mod n and left = (t.my_rank - 1 + n) mod n in
  for step = 1 to n - 1 do
    let outgoing = (t.my_rank - step + 1 + n) mod n in
    let incoming = (t.my_rank - step + n) mod n in
    send t ~seq ~round:step ~dst:right out.(outgoing);
    out.(incoming) <- recv t ~seq ~round:step ~src:left
  done;
  out

let alltoall t input =
  let n = size t in
  if Array.length input <> n then
    invalid_arg "Collectives.alltoall: need one buffer per rank";
  let seq = next_seq t in
  for dst = 0 to n - 1 do
    if dst <> t.my_rank then send t ~seq ~round:0 ~dst input.(dst)
  done;
  let out = Array.make n Bytes.empty in
  out.(t.my_rank) <- input.(t.my_rank);
  for src = 0 to n - 1 do
    if src <> t.my_rank then out.(src) <- recv t ~seq ~round:0 ~src
  done;
  out

(* --- typed helpers ----------------------------------------------------- *)

let float_at b i = Int64.float_of_bits (Bytes.get_int64_le b (i * 8))
let set_float b i v = Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)

let map2_floats f acc contribution =
  let n = min (Bytes.length acc) (Bytes.length contribution) / 8 in
  for i = 0 to n - 1 do
    set_float acc i (f (float_at acc i) (float_at contribution i))
  done

let sum_floats acc contribution = map2_floats ( +. ) acc contribution
let max_floats acc contribution = map2_floats Float.max acc contribution

let bytes_of_floats a =
  let b = Bytes.create (Array.length a * 8) in
  Array.iteri (fun i v -> set_float b i v) a;
  b

let floats_of_bytes b = Array.init (Bytes.length b / 8) (fun i -> float_at b i)

let allreduce_float_sum t values =
  floats_of_bytes (allreduce t ~op:sum_floats (bytes_of_floats values))

(* --- implementation selection ------------------------------------------ *)

module Nic = Nic_offload

module Host_s : Coll_intf.S with type t = t = struct
  type nonrec t = t

  let rank = rank
  let size = size
  let barrier = barrier
  let bcast = bcast
  let reduce = reduce
  let allreduce = allreduce
end

module Nic_s : Coll_intf.S with type t = Nic_offload.t = struct
  type t = Nic_offload.t

  let rank = Nic_offload.rank
  let size = Nic_offload.size
  let barrier = Nic_offload.barrier
  let bcast = Nic_offload.bcast
  let reduce = Nic_offload.reduce
  let allreduce = Nic_offload.allreduce
end

type impl = Host | Nic_offload

let impl_name = function Host -> "host" | Nic_offload -> "nic"

let impl_of_string = function
  | "host" -> Some Host
  | "nic" | "nic_offload" | "nic-offload" -> Some Nic_offload
  | _ -> None

type any = Any : (module Coll_intf.S with type t = 'a) * 'a -> any

let create_impl impl ni ~ranks ~rank ?host_cpu () =
  match impl with
  | Host -> Any ((module Host_s), create ni ~ranks ~rank ?host_cpu ())
  | Nic_offload -> Any ((module Nic_s), Nic.create ni ~ranks ~rank ())

let any_rank (Any ((module M), t)) = M.rank t
let any_size (Any ((module M), t)) = M.size t
let any_barrier ?tolerant (Any ((module M), t)) = M.barrier ?tolerant t
let any_bcast (Any ((module M), t)) ~root payload = M.bcast t ~root payload

let any_reduce (Any ((module M), t)) ~root ~op payload =
  M.reduce t ~root ~op payload

let any_allreduce (Any ((module M), t)) ~op payload = M.allreduce t ~op payload
