(** Collective communication implemented directly on Portals.

    §2 of the paper: the Puma MPI "utilized a high-performance collective
    communication library implemented directly on Portals". This module
    is that layer for the reproduction: tree and dissemination algorithms
    whose point-to-point steps are raw Portals puts into a pooled
    endpoint ({!Pool}) — no MPI underneath.

    All ranks of the group must call each collective in the same order
    (calls are sequenced internally, so different collectives never
    confuse each other's messages). Calls are fiber-blocking. *)

module Pool = Pool

type t

val create :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  ?slab_size:int ->
  ?slab_count:int ->
  ?eq_capacity:int ->
  unit ->
  t
(** One collectives endpoint per rank over an existing Portals interface.
    [portal_index] defaults to 6. The pool sizing defaults are tuned for
    short collective steps (2 slabs of 16 KiB, EQ depth 1024); raise
    [slab_size] when moving payloads larger than one slab. *)

val rank : t -> int
val size : t -> int

val barrier : t -> unit
(** Dissemination barrier: ceil(log2 n) rounds. *)

val bcast : t -> root:int -> bytes -> bytes
(** Binomial-tree broadcast of root's buffer; every rank returns the
    payload (the root returns its own buffer). *)

val reduce : t -> root:int -> op:(bytes -> bytes -> unit) -> bytes -> bytes option
(** Binomial-tree reduction: [op acc contribution] folds a child's
    contribution into [acc] in place (buffers are equal-length). The root
    returns [Some result]; others [None]. *)

val allreduce : t -> op:(bytes -> bytes -> unit) -> bytes -> bytes
(** Reduce to rank 0, then broadcast. *)

val gather : t -> root:int -> bytes -> bytes array option
(** Every rank contributes one buffer; the root returns them indexed by
    rank. Contributions may differ in length. *)

val scatter : t -> root:int -> bytes array option -> bytes
(** The root supplies one buffer per rank ([Some pieces], length = job
    size); every rank returns its piece. *)

val allgather : t -> bytes -> bytes array
(** Ring allgather: n-1 steps, each passing the next chunk around. *)

val alltoall : t -> bytes array -> bytes array
(** Personalised exchange: element [i] of the input goes to rank [i];
    the result's element [j] came from rank [j]. *)

(** {1 Typed helpers} *)

val sum_floats : bytes -> bytes -> unit
(** In-place element-wise float64 sum, for {!reduce}/{!allreduce}. *)

val max_floats : bytes -> bytes -> unit

val bytes_of_floats : float array -> bytes
val floats_of_bytes : bytes -> float array

val allreduce_float_sum : t -> float array -> float array
(** Element-wise sum across all ranks. *)
