(** Collective communication implemented directly on Portals.

    §2 of the paper: the Puma MPI "utilized a high-performance collective
    communication library implemented directly on Portals". This module
    is that layer for the reproduction: tree and dissemination algorithms
    whose point-to-point steps are raw Portals puts into a pooled
    endpoint ({!Pool}) — no MPI underneath.

    All ranks of the group must call each collective in the same order
    (calls are sequenced internally, so different collectives never
    confuse each other's messages). Calls are fiber-blocking.

    This module is the {e host-driven} reference engine: every tree hop
    is a host fiber receiving, combining and re-sending. The
    NIC-offloaded alternative with identical results lives in
    {!Nic_offload} (re-exported as {!Nic}); both satisfy {!Coll_intf.S},
    and {!create_impl} picks one at run time — the CLIs expose the
    choice as [--collectives host|nic]. *)

module Pool = Pool
module Coll_intf = Coll_intf
module Nic = Nic_offload

type t

val create :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  ?slab_size:int ->
  ?slab_count:int ->
  ?eq_capacity:int ->
  ?host_cpu:Sim_engine.Cpu.t ->
  ?host_step:Sim_engine.Time_ns.t ->
  unit ->
  t
(** One collectives endpoint per rank over an existing Portals interface.
    [portal_index] defaults to 6. The pool sizing defaults are tuned for
    short collective steps (2 slabs of 16 KiB, EQ depth 1024); raise
    [slab_size] when moving payloads larger than one slab.

    When [host_cpu] is supplied, every protocol hop charges [host_step]
    (default 2 µs) of compute to it — modelling the per-message host work
    a host-driven tree cannot avoid. The charge serializes behind
    whatever else that CPU is computing, so collectives on a busy host
    degrade (the contrast {!Nic_offload} removes, measured by
    [Experiments.Coll]). Unset, timing is unchanged. *)

val rank : t -> int
val size : t -> int

val barrier : ?tolerant:bool -> t -> unit
(** Dissemination barrier: ceil(log2 n) rounds. With [tolerant] (default
    false), exchanges with crash-stopped ranks are skipped — the
    shutdown best-effort contract of [Mpi.barrier ~tolerant] — so
    survivors are released. *)

val bcast : t -> root:int -> bytes -> bytes
(** Binomial-tree broadcast of root's buffer; every rank returns the
    payload (the root returns its own buffer). *)

val reduce : t -> root:int -> op:(bytes -> bytes -> unit) -> bytes -> bytes option
(** Binomial-tree reduction: [op acc contribution] folds a child's
    contribution into [acc] in place (buffers are equal-length).

    {b The result is root-only — hence [bytes option].} Every rank calls
    [reduce] and every rank contributes a payload, but only [root] holds
    the combined value when the call returns: the root gets
    [Some result], every other rank gets [None]. The asymmetry is the
    MPI_Reduce contract surfaced in the type instead of an
    uninitialised "recvbuf" convention — a non-root cannot accidentally
    read a result that was never sent to it, and forgetting to handle
    the non-root case is a compile error rather than garbage data.
    Pattern-match on your own role:

    {[
      (* Every rank contributes; only rank 0 prints the total. *)
      let mine = Collectives.bytes_of_floats [| local_sum |] in
      match Collectives.reduce c ~root:0 ~op:Collectives.sum_floats mine with
      | Some total ->
        (* we are rank 0: the fold ran ((root ⊕ c1) ⊕ c2) ⊕ … *)
        Format.printf "total: %f@."
          (Collectives.floats_of_bytes total).(0)
      | None -> ()   (* any other rank: contributed, owns no result *)
    ]}

    Ranks that need the value everywhere should call {!allreduce}
    instead of broadcasting a [reduce] result by hand. Both engines
    ({!Collectives} and {!Nic_offload}) implement this identical
    contract; folds run in ascending-mask order, so results are
    byte-identical between them. *)

val allreduce : t -> op:(bytes -> bytes -> unit) -> bytes -> bytes
(** Reduce to rank 0, then broadcast. *)

val gather : t -> root:int -> bytes -> bytes array option
(** Every rank contributes one buffer; the root returns them indexed by
    rank. Contributions may differ in length. *)

val scatter : t -> root:int -> bytes array option -> bytes
(** The root supplies one buffer per rank ([Some pieces], length = job
    size); every rank returns its piece. *)

val allgather : t -> bytes -> bytes array
(** Ring allgather: n-1 steps, each passing the next chunk around. *)

val alltoall : t -> bytes array -> bytes array
(** Personalised exchange: element [i] of the input goes to rank [i];
    the result's element [j] came from rank [j]. *)

(** {1 Typed helpers} *)

val sum_floats : bytes -> bytes -> unit
(** In-place element-wise float64 sum, for {!reduce}/{!allreduce}. *)

val max_floats : bytes -> bytes -> unit

val bytes_of_floats : float array -> bytes
val floats_of_bytes : bytes -> float array

val allreduce_float_sum : t -> float array -> float array
(** Element-wise sum across all ranks. *)

(** {1 Implementation selection}

    Both engines behind one signature: [Host] is this module's
    host-driven reference, [Nic_offload] is the triggered-chain engine.
    Results are byte-identical; only where the tree's work happens — and
    therefore how it interacts with a busy host CPU — differs. *)

module Host_s : Coll_intf.S with type t = t
(** This module, packaged as a {!Coll_intf.S} for functors. *)

module Nic_s : Coll_intf.S with type t = Nic_offload.t

type impl = Host | Nic_offload

val impl_name : impl -> string
(** ["host"] / ["nic"] — the [--collectives] CLI spellings. *)

val impl_of_string : string -> impl option
(** Inverse of {!impl_name} (also accepts ["nic_offload"]). *)

type any = Any : (module Coll_intf.S with type t = 'a) * 'a -> any
(** An endpoint of either engine, packed with its operations. *)

val create_impl :
  impl ->
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?host_cpu:Sim_engine.Cpu.t ->
  unit ->
  any
(** Create an endpoint of the chosen engine with default sizing.
    [host_cpu] is the per-hop charge target for the [Host] engine
    (see {!create}); the NIC engine ignores it — that is the point. *)

val any_rank : any -> int
val any_size : any -> int
val any_barrier : ?tolerant:bool -> any -> unit
val any_bcast : any -> root:int -> bytes -> bytes

val any_reduce :
  any -> root:int -> op:(bytes -> bytes -> unit) -> bytes -> bytes option

val any_allreduce : any -> op:(bytes -> bytes -> unit) -> bytes -> bytes
