(** Central metrics registry for the whole fabric.

    Subsystems register named instruments — counters, gauges, polled
    probes, summaries, and (x, y) time-series — carrying string labels
    such as [("proc", "1:0")] or [("reason", "no_match")]. Experiments and
    the CLI then read one uniform {!Snapshot} instead of reaching into
    per-module statistics records.

    Cost model: instruments are registered once at component setup;
    mutation costs one branch on the registry's shared enabled flag plus
    the arithmetic; probes are closures polled only by {!snapshot}, so the
    instrumented hot path pays nothing for them. Disabling the registry
    ({!set_enabled}) turns every mutation into a single load-and-branch.

    Registration is idempotent: asking for an instrument under an existing
    (name, labels) key returns the already-registered instrument.
    Re-registering a {!probe} rebinds the closure — components recreated
    under the same identity replace their predecessor's probe. Asking for
    a key that exists with a different instrument kind raises
    [Invalid_argument]. *)

type t

type labels = (string * string) list
(** Label sets are normalised: sorted by key, duplicate keys collapsed. *)

val create : ?enabled:bool -> ?detail:bool -> unit -> t
(** A fresh registry, enabled by default. [detail] (default [false])
    additionally turns on time-series sampling — see {!set_detail}. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val detail : t -> bool

val set_detail : t -> bool -> unit
(** Time-series sampling ({!push}) is a separate, default-off detail
    level: every sample allocates a point, and some series sample once
    per message (event-queue depth, protocol windows), which is too
    expensive for large scaling runs that never read the curves.
    Counters, gauges, probes and summaries are unaffected. Deep-dive
    experiments that plot curves (the Fig. 5/6 worlds) enable it. *)

val normalize_labels : labels -> labels
val pp_labels : Format.formatter -> labels -> unit

(** {1 Instruments} *)

type counter
type gauge
type summary
type series

val counter : t -> ?labels:labels -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val probe : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** [probe t name f] registers a gauge whose value is [f ()] polled at
    {!snapshot} time. *)

val summary : t -> ?labels:labels -> string -> summary
val observe : summary -> float -> unit

val series : t -> ?labels:labels -> string -> series

val push : series -> x:float -> y:float -> unit
(** Record one point. No-op unless the registry's detail level is on
    ({!set_detail}). *)

val series_points : series -> (float * float) list
val series_length : series -> int

val reset : t -> unit
(** Zero every instrument in place (probes are unaffected); registrations
    and handles stay valid. *)

(** {1 Snapshots} *)

module Snapshot : sig
  type value =
    | Counter of int
    | Gauge of float
    | Summary of {
        count : int;
        mean : float;
        min : float;
        max : float;
        stddev : float;
        total : float;
      }
    | Series of (float * float) list

  type entry = { name : string; labels : labels; value : value }

  type t = entry list
  (** Sorted by name, then labels. *)

  val find : ?labels:labels -> t -> string -> value option
  (** The value of the entry with this name and label set, if present. *)

  val find_exn : ?labels:labels -> t -> string -> value
  val filter : t -> string -> entry list
end

val snapshot : t -> Snapshot.t
(** Capture every instrument's current value; probes are polled here. *)

val absorb : t -> ?labels:labels -> Snapshot.t -> unit
(** [absorb t ~labels snap] merges a snapshot into [t], prefixing every
    entry's labels with [labels]. Counters and summaries accumulate,
    gauges overwrite, series append. Used to aggregate per-world
    registries into one cross-configuration report. *)
