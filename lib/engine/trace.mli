(** Structured trace spans for simulations.

    Disabled traces cost one branch per event. Enabled traces keep the
    most recent [capacity] spans in a ring buffer, can mirror them to a
    [Logs] source, and export to Chrome [trace_event] JSON for
    [chrome://tracing] / Perfetto.

    A span carries a subsystem (the Chrome category), a name, and
    optionally the process it happened on and a message id. Four phases
    exist: instantaneous marks, complete spans with a known duration
    (natural for scheduled costs — the NIC knows up front how long a
    matching walk takes), and begin/end pairs bracketing fiber work. *)

type phase = Instant | Complete of Time_ns.t  (** duration *) | Begin | End

type span = {
  time : Time_ns.t;
  subsys : string;
  name : string;
  proc : string option;
  msg_id : int option;
  phase : phase;
}

type t

val create : ?capacity:int -> ?log:bool -> now:(unit -> Time_ns.t) -> unit -> t
(** [create ~now ()] is a disabled trace with the given ring [capacity]
    (default 4096; the ring itself is allocated lazily on the first
    {!enable}, so disabled traces cost no memory) reading timestamps from
    the [now] clock (normally
    [fun () -> Scheduler.now sched]; the clock is injected so the
    scheduler itself can own a trace). With [log:true], spans are also
    emitted at debug level through the ["sim"] log source. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val instant : t -> ?subsys:string -> ?proc:string -> ?msg_id:int -> string -> unit
(** Record a point event at the current simulated time. *)

val complete :
  t ->
  ?subsys:string ->
  ?proc:string ->
  ?msg_id:int ->
  start:Time_ns.t ->
  finish:Time_ns.t ->
  string ->
  unit
(** Record a span covering [start..finish]; may be recorded before the
    simulation clock reaches [finish] (costs are known when charged). *)

val begin_span : t -> ?subsys:string -> ?proc:string -> ?msg_id:int -> string -> unit
val end_span : t -> ?subsys:string -> ?proc:string -> ?msg_id:int -> string -> unit
(** Bracket fiber work; nest freely per (proc) track. *)

val emit : t -> ?subsys:string -> string -> unit
(** [emit t msg] is [instant t msg] — flat-string compatibility. *)

val emitf : t -> ?subsys:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!emit} with formatting; the format arguments are only evaluated
    when the trace is enabled. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val events : t -> (Time_ns.t * string * string) list
(** Retained spans as flat (time, subsystem, name) triples. *)

val dump : Format.formatter -> t -> unit

val export_chrome : ?name:string -> t -> string
(** The whole trace as one Chrome [trace_event] JSON document with a
    single process named [name]. *)

module Chrome : sig
  val to_string : (string * span list) list -> string
  (** [to_string groups] renders one JSON document; each (process-name,
      spans) group becomes a Chrome pid, and each distinct [span.proc]
      within a group becomes a named thread. *)
end
