(** Priority queue of timestamped simulation events.

    A binary min-heap keyed by [(time, sequence)]. The sequence number is
    assigned at insertion, so events scheduled for the same instant fire in
    insertion order — this FIFO tie-break is what makes simulations
    deterministic and is relied upon throughout the engine.

    The heap is laid out as parallel arrays, so the steady-state
    pop-then-push pattern of a discrete-event loop ({!pop_min} an event,
    whose handler {!add}s its successors) allocates nothing: {!add} writes
    into preallocated slots (amortised) and {!pop_min}/{!min_time} return
    unboxed values. {!pop} remains as the option-returning interface. *)

type 'a t

exception Empty
(** Raised by {!min_time} and {!pop_min} on an empty heap. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val peak_size : 'a t -> int
(** High-water mark of {!length} over the heap's lifetime. *)

val add : 'a t -> time:Time_ns.t -> 'a -> unit
(** [add t ~time v] schedules [v] at [time]. O(log n), non-allocating
    (amortised). *)

val min_time : 'a t -> Time_ns.t
(** Timestamp of the earliest event. O(1), non-allocating. Raises {!Empty}
    if the heap is empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's value (its timestamp is
    {!min_time}, read it first). O(log n), non-allocating. Raises {!Empty}
    if the heap is empty. *)

val pop : 'a t -> (Time_ns.t * 'a) option
(** [pop t] removes and returns the earliest event, or [None] if empty.
    O(log n). Allocating convenience wrapper over {!min_time} +
    {!pop_min}. *)

val peek_time : 'a t -> Time_ns.t option
(** Timestamp of the earliest event without removing it. O(1). *)

val clear : 'a t -> unit

val drain : 'a t -> (Time_ns.t -> 'a -> unit) -> unit
(** [drain t f] pops every event in order, applying [f]. Events added by
    [f] itself are drained too. *)
