module Ivar = struct
  type 'a state = Empty of (unit -> unit) Queue.t | Filled of 'a
  type 'a t = { sched : Scheduler.t; mutable state : 'a state }

  let create sched = { sched; state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Filled _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Filled v;
      Queue.iter (fun waker -> waker ()) waiters

  let is_filled t = match t.state with Filled _ -> true | Empty _ -> false
  let peek t = match t.state with Filled v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Filled v -> v
    | Empty waiters ->
      Scheduler.suspend t.sched ~name:"ivar" (fun waker -> Queue.add waker waiters);
      (match t.state with
      | Filled v -> v
      | Empty _ -> assert false)
end

module Waitq = struct
  type t = { sched : Scheduler.t; name : string; waiters : (unit -> unit) Queue.t }

  let create ?(name = "waitq") sched = { sched; name; waiters = Queue.create () }

  let wait t =
    Scheduler.suspend t.sched ~name:t.name (fun waker -> Queue.add waker t.waiters)

  let signal t =
    match Queue.take_opt t.waiters with None -> () | Some waker -> waker ()

  let broadcast t =
    (* Wake exactly the fibers waiting now; wakers run their fibers at the
       current instant, and a re-wait would enqueue into the same queue, so
       drain a snapshot. The zero- and one-waiter cases (every event-queue
       post broadcasts, usually to at most one blocked receiver) skip the
       snapshot allocation. *)
    match Queue.length t.waiters with
    | 0 -> ()
    | 1 -> ( match Queue.take_opt t.waiters with None -> () | Some w -> w ())
    | _ ->
      let snapshot = Queue.create () in
      Queue.transfer t.waiters snapshot;
      Queue.iter (fun waker -> waker ()) snapshot

  let waiters t = Queue.length t.waiters
end

module Mailbox = struct
  type 'a t = { q : 'a Queue.t; nonempty : Waitq.t }

  let create ?(name = "mailbox") sched =
    { q = Queue.create (); nonempty = Waitq.create ~name sched }

  let send t v =
    Queue.add v t.q;
    Waitq.signal t.nonempty

  let rec recv t =
    match Queue.take_opt t.q with
    | Some v -> v
    | None ->
      Waitq.wait t.nonempty;
      recv t

  let try_recv t = Queue.take_opt t.q
  let length t = Queue.length t.q
end

module Semaphore = struct
  type t = { mutable units : int; nonzero : Waitq.t }

  let create ?(name = "semaphore") sched n =
    if n < 0 then invalid_arg "Semaphore.create: negative";
    { units = n; nonzero = Waitq.create ~name sched }

  let rec acquire t =
    if t.units > 0 then t.units <- t.units - 1
    else begin
      Waitq.wait t.nonzero;
      acquire t
    end

  let release t =
    t.units <- t.units + 1;
    Waitq.signal t.nonzero

  let available t = t.units
end

module Barrier = struct
  type t = {
    parties : int;
    mutable arrived : int;
    mutable generation : int;
    released : Waitq.t;
  }

  let create ?(name = "barrier") sched n =
    if n <= 0 then invalid_arg "Barrier.create: parties must be positive";
    { parties = n; arrived = 0; generation = 0; released = Waitq.create ~name sched }

  let await t =
    let gen = t.generation in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      t.arrived <- 0;
      t.generation <- t.generation + 1;
      Waitq.broadcast t.released
    end
    else
      while t.generation = gen do
        Waitq.wait t.released
      done
end
