(* Conservative time-window runtime for parallel discrete-event runs.

   Each shard owns one {!Scheduler} (heap, clock, PRNG, metrics) and runs
   on its own OCaml domain. Synchronization is the classic conservative
   window scheme: with [lookahead] = the minimum latency of any
   shard-crossing link, an event executing at time t can only create
   remote work at or after t + lookahead, so every shard may process the
   half-open window [start, start + lookahead) without hearing from the
   others. Cross-shard sends become timestamped envelopes posted to the
   destination's mailbox during the window and drained — sorted by
   (time, source shard, per-source sequence) so the merge order is a pure
   function of the simulation, not of OS thread timing — at the next
   barrier.

   Each round is two barrier phases:

     run window          (posts land in mailboxes)
     -- barrier A --     (no further posts for this round)
     drain own mailbox; publish earliest local event
     -- barrier B --     (reduction inputs complete)
     next window = [min over shards, min + lookahead)

   Memory model notes: the reduction slots ([next]) are written strictly
   between barriers A and B and read strictly between B and the next A,
   so the barrier mutex orders every access; the same phase discipline
   makes the [abort] flag consistent — it is only ever set in the publish
   phase, so after barrier B all shards read the same value and exit in
   lockstep (nobody is left waiting at a barrier). The barriers block on
   a condition variable rather than spinning, so oversubscribed runs
   (more domains than cores — the common case in CI containers) degrade
   gracefully. *)

type 'msg envelope = {
  e_time : Time_ns.t;
  e_src : int;
  e_seq : int;
  e_msg : 'msg;
}

type 'msg mailbox = { mu : Mutex.t; mutable items : 'msg envelope list }

type barrier = {
  bm : Mutex.t;
  bc : Condition.t;
  total : int;
  mutable count : int;
  mutable phase : int;
}

let barrier_create total =
  { bm = Mutex.create (); bc = Condition.create (); total; count = 0; phase = 0 }

let barrier_await b =
  Mutex.lock b.bm;
  let ph = b.phase in
  b.count <- b.count + 1;
  if b.count = b.total then begin
    b.count <- 0;
    b.phase <- ph + 1;
    Condition.broadcast b.bc
  end
  else
    while b.phase = ph do
      Condition.wait b.bc b.bm
    done;
  Mutex.unlock b.bm

type 'msg t = {
  scheds : Scheduler.t array;
  lookahead : Time_ns.t;
  mailboxes : 'msg mailbox array;
  seqs : int array array; (* seqs.(src).(dst): touched by domain src only *)
  window_end : Time_ns.t array; (* window_end.(k): touched by domain k only *)
  next : Time_ns.t array; (* reduction slots; max_int = no local event *)
  barrier : barrier;
  failure : exn option Atomic.t;
  mutable abort : bool; (* written in publish phase only; see header *)
  mutable rounds : int;
}

let no_event = max_int

let create ~scheds ~lookahead () =
  let n = Array.length scheds in
  if n < 1 then invalid_arg "Shard.create: need at least one shard";
  if Time_ns.compare lookahead Time_ns.zero <= 0 then
    invalid_arg "Shard.create: lookahead must be positive";
  {
    scheds;
    lookahead;
    mailboxes = Array.init n (fun _ -> { mu = Mutex.create (); items = [] });
    seqs = Array.init n (fun _ -> Array.make n 0);
    window_end = Array.make n Time_ns.zero;
    next = Array.make n no_event;
    barrier = barrier_create n;
    failure = Atomic.make None;
    abort = false;
    rounds = 0;
  }

let domains t = Array.length t.scheds
let lookahead t = t.lookahead
let rounds t = t.rounds
let sched t k = t.scheds.(k)

let post t ~src ~dst ~time msg =
  if src = dst then invalid_arg "Shard.post: src and dst shard are equal";
  if Time_ns.compare time t.window_end.(src) < 0 then
    invalid_arg
      (Format.asprintf
         "Shard.post: time %a violates the lookahead bound (window end %a)"
         Time_ns.pp time Time_ns.pp t.window_end.(src));
  let seq = t.seqs.(src).(dst) in
  t.seqs.(src).(dst) <- seq + 1;
  let env = { e_time = time; e_src = src; e_seq = seq; e_msg = msg } in
  let box = t.mailboxes.(dst) in
  Mutex.lock box.mu;
  box.items <- env :: box.items;
  Mutex.unlock box.mu

let fail t e =
  ignore (Atomic.compare_and_set t.failure None (Some e))

let failed t = Atomic.get t.failure <> None

let drain t k deliver =
  let box = t.mailboxes.(k) in
  Mutex.lock box.mu;
  let items = box.items in
  box.items <- [];
  Mutex.unlock box.mu;
  let sorted =
    List.sort
      (fun a b ->
        match Time_ns.compare a.e_time b.e_time with
        | 0 -> (
          match compare a.e_src b.e_src with
          | 0 -> compare a.e_seq b.e_seq
          | c -> c)
        | c -> c)
      items
  in
  List.iter (fun e -> deliver ~shard:k ~time:e.e_time e.e_msg) sorted

(* One shard's run loop. Every shard executes the same round structure
   (same barrier count per round), and every exit point sits directly
   after barrier B on a value all shards computed identically, so the
   loop can never strand a peer at a barrier. User code (deliver
   callbacks, scheduled events) is wrapped: a raise records the failure
   and the shard degrades to a no-op participant until the common exit. *)
let shard_loop t k ~until ~deliver =
  let sched = t.scheds.(k) in
  let n = domains t in
  let exception Exit_loop in
  try
    while true do
      (* Publish phase: drain our mailbox, expose our earliest event. *)
      (try
         if failed t then t.next.(k) <- no_event
         else begin
           drain t k deliver;
           t.next.(k) <-
             (match Scheduler.next_event_time sched with
             | Some time -> time
             | None -> no_event)
         end
       with e ->
         fail t e;
         t.next.(k) <- no_event);
      if failed t then t.abort <- true;
      barrier_await t.barrier;
      if t.abort then raise Exit_loop;
      let global_next = ref no_event in
      for i = 0 to n - 1 do
        if t.next.(i) < !global_next then global_next := t.next.(i)
      done;
      if !global_next = no_event then raise Exit_loop;
      (match until with
      | Some limit when Time_ns.compare !global_next limit > 0 ->
        raise Exit_loop
      | _ -> ());
      let window_end =
        let w = Time_ns.add !global_next t.lookahead in
        match until with
        | Some limit when Time_ns.compare w (Time_ns.add limit 1) > 0 ->
          Time_ns.add limit 1
        | _ -> w
      in
      t.window_end.(k) <- window_end;
      if k = 0 then t.rounds <- t.rounds + 1;
      (* Window phase: events in [global_next, window_end) are safe. *)
      (try Scheduler.run ~until:(Time_ns.sub window_end 1) sched
       with e -> fail t e);
      barrier_await t.barrier
    done
  with Exit_loop -> ()

let run ?until ?(allow_blocked = false) t ~deliver =
  let n = domains t in
  Atomic.set t.failure None;
  t.abort <- false;
  Array.fill t.window_end 0 n Time_ns.zero;
  (* S shard clocks advance over the same interval; count the merged
     clock once instead (see Scheduler.count_sim_time). *)
  Array.iter (fun s -> Scheduler.count_sim_time s false) t.scheds;
  let clock () =
    Array.fold_left (fun acc s -> max acc (Scheduler.now s)) Time_ns.zero
      t.scheds
  in
  let start_clock = clock () in
  let workers =
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () -> shard_loop t (i + 1) ~until ~deliver))
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Domain.join workers;
      Array.iter (fun s -> Scheduler.count_sim_time s true) t.scheds;
      Scheduler.add_global_sim_time (Time_ns.sub (clock ()) start_clock))
    (fun () -> shard_loop t 0 ~until ~deliver);
  (match Atomic.get t.failure with Some e -> raise e | None -> ());
  if until = None && not allow_blocked then begin
    let live =
      Array.fold_left (fun acc s -> acc + Scheduler.live_fibers s) 0 t.scheds
    in
    if live > 0 then
      raise
        (Scheduler.Deadlock
           (Array.to_list t.scheds
           |> List.concat_map Scheduler.blocked_report
           |> List.sort compare))
  end
