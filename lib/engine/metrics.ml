(* Central observability registry. Every subsystem (NI, CPU, links, event
   queues, protocol layers) registers named instruments here; experiments
   and the CLI read a uniform snapshot back out instead of stitching
   together per-module records.

   Instruments are keyed by (name, sorted labels); registering the same key
   twice returns the same instrument, so components created in loops (one
   NI per rank, one link per node) can register unconditionally. Probes are
   polled only at snapshot time, so hot paths pay nothing for them; the
   mutating instruments pay one branch on the shared [enabled] flag. *)

type labels = (string * string) list

let normalize_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let pp_labels ppf labels =
  match labels with
  | [] -> ()
  | _ ->
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

type counter = { c_enabled : bool ref; mutable c_value : int }
type gauge = { g_enabled : bool ref; mutable g_value : float }

type summary = {
  m_enabled : bool ref;
  mutable m_count : int;
  mutable m_total : float;
  mutable m_sum_sq : float;
  mutable m_min : float;
  mutable m_max : float;
}

type series = {
  r_enabled : bool ref;
  mutable r_rev_points : (float * float) list;
  mutable r_len : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> float)
  | Summary of summary
  | Series of series

type entry = { name : string; labels : labels; mutable instrument : instrument }

type t = {
  enabled : bool ref;
  (* Time-series sampling is a separate, default-off level: every sample
     allocates a point, and some series sample per message (EQ depth,
     protocol windows) — too hot to pay in scaling sweeps that never read
     the curves. Deep-dive experiments (Fig. 5/6 worlds) switch it on. *)
  detail : bool ref;
  mutable rev_entries : entry list;
  tbl : (string * labels, entry) Hashtbl.t;
}

let create ?(enabled = true) ?(detail = false) () =
  {
    enabled = ref enabled;
    detail = ref detail;
    rev_entries = [];
    tbl = Hashtbl.create 64;
  }

let enabled t = !(t.enabled)
let set_enabled t on = t.enabled := on
let detail t = !(t.detail)
let set_detail t on = t.detail := on

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Probe _ -> "probe"
  | Summary _ -> "summary"
  | Series _ -> "series"

let register t name labels make =
  let labels = normalize_labels labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some entry -> entry
  | None ->
    let entry = { name; labels; instrument = make () } in
    Hashtbl.add t.tbl key entry;
    t.rev_entries <- entry :: t.rev_entries;
    entry

let mismatch name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s, wanted a %s" name
       got want)

let counter t ?(labels = []) name =
  match
    (register t name labels (fun () ->
         Counter { c_enabled = t.enabled; c_value = 0 }))
      .instrument
  with
  | Counter c -> c
  | other -> mismatch name "counter" (kind_name other)

let gauge t ?(labels = []) name =
  match
    (register t name labels (fun () ->
         Gauge { g_enabled = t.enabled; g_value = 0. }))
      .instrument
  with
  | Gauge g -> g
  | other -> mismatch name "gauge" (kind_name other)

let probe t ?(labels = []) name f =
  (* Re-registering a probe rebinds it: a component recreated under the
     same identity (e.g. a fresh NI for the same rank) must not leave a
     stale closure polling dead state. *)
  let entry = register t name labels (fun () -> Probe f) in
  match entry.instrument with
  | Probe _ -> entry.instrument <- Probe f
  | other -> mismatch name "probe" (kind_name other)

let new_summary enabled =
  Summary
    {
      m_enabled = enabled;
      m_count = 0;
      m_total = 0.;
      m_sum_sq = 0.;
      m_min = infinity;
      m_max = neg_infinity;
    }

let summary t ?(labels = []) name =
  match (register t name labels (fun () -> new_summary t.enabled)).instrument with
  | Summary s -> s
  | other -> mismatch name "summary" (kind_name other)

let series t ?(labels = []) name =
  match
    (register t name labels (fun () ->
         Series { r_enabled = t.detail; r_rev_points = []; r_len = 0 }))
      .instrument
  with
  | Series s -> s
  | other -> mismatch name "series" (kind_name other)

let incr c = if !(c.c_enabled) then c.c_value <- c.c_value + 1
let add c n = if !(c.c_enabled) then c.c_value <- c.c_value + n
let counter_value c = c.c_value
let set g v = if !(g.g_enabled) then g.g_value <- v
let gauge_value g = g.g_value

let observe m x =
  if !(m.m_enabled) then begin
    m.m_count <- m.m_count + 1;
    m.m_total <- m.m_total +. x;
    m.m_sum_sq <- m.m_sum_sq +. (x *. x);
    if x < m.m_min then m.m_min <- x;
    if x > m.m_max then m.m_max <- x
  end

let push r ~x ~y =
  if !(r.r_enabled) then begin
    r.r_rev_points <- (x, y) :: r.r_rev_points;
    r.r_len <- r.r_len + 1
  end

let series_points r = List.rev r.r_rev_points
let series_length r = r.r_len

let reset t =
  List.iter
    (fun e ->
      match e.instrument with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.
      | Probe _ -> ()
      | Summary m ->
        m.m_count <- 0;
        m.m_total <- 0.;
        m.m_sum_sq <- 0.;
        m.m_min <- infinity;
        m.m_max <- neg_infinity
      | Series r ->
        r.r_rev_points <- [];
        r.r_len <- 0)
    t.rev_entries

module Snapshot = struct
  type value =
    | Counter of int
    | Gauge of float
    | Summary of {
        count : int;
        mean : float;
        min : float;
        max : float;
        stddev : float;
        total : float;
      }
    | Series of (float * float) list

  type entry = { name : string; labels : labels; value : value }
  type nonrec t = entry list

  let find ?(labels = []) t name =
    let labels = normalize_labels labels in
    Option.map
      (fun e -> e.value)
      (List.find_opt (fun e -> String.equal e.name name && e.labels = labels) t)

  let find_exn ?(labels = []) t name =
    match find ~labels t name with
    | Some v -> v
    | None ->
      invalid_arg
        (Format.asprintf "Metrics.Snapshot: no entry %S %a" name pp_labels
           (normalize_labels labels))

  let filter t name = List.filter (fun e -> String.equal e.name name) t
end

let summary_stats m =
  let mean = if m.m_count = 0 then 0. else m.m_total /. float_of_int m.m_count in
  let stddev =
    if m.m_count < 2 then 0.
    else begin
      let n = float_of_int m.m_count in
      let var = (m.m_sum_sq /. n) -. (mean *. mean) in
      if var < 0. then 0. else sqrt var
    end
  in
  Snapshot.Summary
    {
      count = m.m_count;
      mean;
      min = (if m.m_count = 0 then 0. else m.m_min);
      max = (if m.m_count = 0 then 0. else m.m_max);
      stddev;
      total = m.m_total;
    }

let snapshot t : Snapshot.t =
  let capture e : Snapshot.entry =
    let value =
      match e.instrument with
      | Counter c -> Snapshot.Counter c.c_value
      | Gauge g -> Snapshot.Gauge g.g_value
      | Probe f -> Snapshot.Gauge (f ())
      | Summary m -> summary_stats m
      | Series r -> Snapshot.Series (series_points r)
    in
    { Snapshot.name = e.name; labels = e.labels; value }
  in
  List.rev_map capture t.rev_entries
  |> List.stable_sort (fun (a : Snapshot.entry) b ->
         match String.compare a.Snapshot.name b.Snapshot.name with
         | 0 -> compare a.Snapshot.labels b.Snapshot.labels
         | c -> c)

let absorb t ?(labels = []) (snap : Snapshot.t) =
  List.iter
    (fun (e : Snapshot.entry) ->
      let combined = labels @ e.Snapshot.labels in
      match e.Snapshot.value with
      | Snapshot.Counter v ->
        let c = counter t ~labels:combined e.Snapshot.name in
        c.c_value <- c.c_value + v
      | Snapshot.Gauge v ->
        let g = gauge t ~labels:combined e.Snapshot.name in
        g.g_value <- v
      | Snapshot.Summary { count; mean; stddev; min; max; total } ->
        let m = summary t ~labels:combined e.Snapshot.name in
        if count > 0 then begin
          let n = float_of_int count in
          (* Recover the moment sums so absorbed summaries keep merging:
             sum_sq = n * (stddev^2 + mean^2). *)
          m.m_count <- m.m_count + count;
          m.m_total <- m.m_total +. total;
          m.m_sum_sq <- m.m_sum_sq +. (n *. ((stddev *. stddev) +. (mean *. mean)));
          if min < m.m_min then m.m_min <- min;
          if max > m.m_max then m.m_max <- max
        end
      | Snapshot.Series pts ->
        let r = series t ~labels:combined e.Snapshot.name in
        List.iter
          (fun (x, y) ->
            r.r_rev_points <- (x, y) :: r.r_rev_points;
            r.r_len <- r.r_len + 1)
          pts)
    snap
