(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be reproducible: a run with the same seed produces
    the same event interleaving and the same measurements. We therefore use
    an explicit-state splitmix64 generator rather than the global [Random]
    state, so independent components can carry independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Useful to give each simulated node its own stream. *)

val derive : seed:int -> index:int -> t
(** [derive ~seed ~index] is a statistically independent generator that is
    a pure function of [(seed, index)] — no generator is advanced, so the
    stream shard [index] sees does not depend on how many other shards
    exist or when they were created. No derived stream coincides with the
    root stream [create ~seed] (the index, offset by one, is mixed through
    two splitmix64 rounds first). *)

val derived_seed : seed:int -> index:int -> int
(** The integer seed underlying [derive ~seed ~index], for components that
    take a seed rather than a generator. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by [t]. *)
