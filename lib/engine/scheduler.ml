exception Deadlock of string list
exception Stopped
exception Killed

type fiber = { id : int; name : string; domain : int option; epoch : int }

type blocked_entry = {
  b_fiber : fiber;
  b_why : string;
  b_since : Time_ns.t;
  b_kill : unit -> unit;  (* discontinue the stored continuation with Killed *)
}

type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable now : Time_ns.t;
  mutable next_fiber_id : int;
  mutable live : int;
  mutable stopping : bool;
  mutable events : int;
  mutable count_sim_time : bool;
  blocked : (int, blocked_entry) Hashtbl.t;
  domain_kills : (int, int) Hashtbl.t;
  mutable current : fiber option;
  prng : Prng.t;
  metrics : Metrics.t;
  mutable trace_slot : Trace.t option;
}

(* Process-wide totals, accumulated across every scheduler instance so a
   harness can meter a whole experiment (which typically builds many
   worlds) as a delta around its run — see [global_totals]. Atomics:
   parallel worlds run one scheduler per domain, and these are the only
   engine-level cells written from more than one domain. *)
type totals = { t_events : int; t_fibers : int; t_sim_time : Time_ns.t }

let g_events = Atomic.make 0
let g_fibers = Atomic.make 0
let g_sim_ns = Atomic.make 0

let global_totals () =
  {
    t_events = Atomic.get g_events;
    t_fibers = Atomic.get g_fibers;
    t_sim_time = Atomic.get g_sim_ns;
  }

(* Parallel runs advance S shard clocks over the same interval; the shard
   runtime turns per-scheduler accounting off and credits the global clock
   once, so sim-time totals match the sequential run byte for byte. *)
let add_global_sim_time ns =
  if ns > 0 then ignore (Atomic.fetch_and_add g_sim_ns ns)

let count_sim_time t flag = t.count_sim_time <- flag

type _ Effect.t += Suspend : (string * ((unit -> unit) -> unit)) -> unit Effect.t

let create ?(seed = 0) ?(trace_capacity = 65536) () =
  let t =
    {
      heap = Event_heap.create ();
      now = Time_ns.zero;
      next_fiber_id = 0;
      live = 0;
      stopping = false;
      events = 0;
      count_sim_time = true;
      blocked = Hashtbl.create 64;
      domain_kills = Hashtbl.create 8;
      current = None;
      prng = Prng.create ~seed;
      metrics = Metrics.create ();
      trace_slot = None;
    }
  in
  (* The trace reads the clock through a closure because Trace cannot
     depend on this module (the scheduler owns the trace). *)
  t.trace_slot <- Some (Trace.create ~capacity:trace_capacity ~now:(fun () -> t.now) ());
  Metrics.probe t.metrics "sched.events_processed" (fun () ->
      float_of_int t.events);
  Metrics.probe t.metrics "sched.fibers_spawned" (fun () ->
      float_of_int t.next_fiber_id);
  Metrics.probe t.metrics "sched.heap_peak" (fun () ->
      float_of_int (Event_heap.peak_size t.heap));
  t

let now t = t.now
let prng t = t.prng
let live_fibers t = t.live
let events_processed t = t.events
let fibers_spawned t = t.next_fiber_id
let heap_peak t = Event_heap.peak_size t.heap
let metrics t = t.metrics

let trace t =
  match t.trace_slot with Some tr -> tr | None -> assert false

let at t time f =
  if Time_ns.compare time t.now < 0 then
    invalid_arg
      (Format.asprintf "Scheduler.at: time %a is before now %a" Time_ns.pp time
         Time_ns.pp t.now);
  Event_heap.add t.heap ~time f

let after t dt f = at t (Time_ns.add t.now dt) f

let domain_epoch t d = Option.value ~default:0 (Hashtbl.find_opt t.domain_kills d)

(* A fiber is dead once its domain has been killed after the fiber was
   spawned; fibers spawned after a restart carry the newer epoch and are
   unaffected by earlier kills. *)
let fiber_dead t fiber =
  match fiber.domain with
  | None -> false
  | Some d -> domain_epoch t d > fiber.epoch

(* Run a fiber body under the effect handler. [k] resumptions re-enter
   through this handler, so every blocking point in the fiber is covered. *)
let start_fiber t fiber f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          match e with
          | Killed -> t.live <- t.live - 1
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (why, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                if fiber_dead t fiber then discontinue k Killed
                else begin
                  let entry =
                    {
                      b_fiber = fiber;
                      b_why = why;
                      b_since = t.now;
                      b_kill =
                        (fun () ->
                          let prev = t.current in
                          t.current <- Some fiber;
                          discontinue k Killed;
                          t.current <- prev);
                    }
                  in
                  Hashtbl.replace t.blocked fiber.id entry;
                  let woken = ref false in
                  let waker () =
                    if fiber_dead t fiber then ()
                    else if !woken then
                      invalid_arg "Scheduler: waker invoked more than once"
                    else begin
                      woken := true;
                      Hashtbl.remove t.blocked fiber.id;
                      Event_heap.add t.heap ~time:t.now (fun () ->
                          let prev = t.current in
                          t.current <- Some fiber;
                          (if fiber_dead t fiber then discontinue k Killed
                           else continue k ());
                          t.current <- prev)
                    end
                  in
                  register waker
                end)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t ?(name = "fiber") ?domain f =
  let epoch = match domain with None -> 0 | Some d -> domain_epoch t d in
  let fiber = { id = t.next_fiber_id; name; domain; epoch } in
  t.next_fiber_id <- t.next_fiber_id + 1;
  ignore (Atomic.fetch_and_add g_fibers 1);
  t.live <- t.live + 1;
  Event_heap.add t.heap ~time:t.now (fun () ->
      if fiber_dead t fiber then t.live <- t.live - 1
      else begin
        let prev = t.current in
        t.current <- Some fiber;
        start_fiber t fiber f;
        t.current <- prev
      end)

let kill_domain t d =
  Hashtbl.replace t.domain_kills d (domain_epoch t d + 1);
  let victims =
    Hashtbl.fold
      (fun id e acc ->
        match e.b_fiber.domain with
        | Some dd when dd = d -> (id, e) :: acc
        | _ -> acc)
      t.blocked []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (id, e) ->
      Hashtbl.remove t.blocked id;
      e.b_kill ())
    victims;
  List.length victims

let suspend t ~name register =
  match t.current with
  | None -> invalid_arg "Scheduler.suspend: not inside a fiber"
  | Some _ -> Effect.perform (Suspend (name, register))

let delay_until t time =
  if Time_ns.compare time t.now > 0 then
    suspend t ~name:"delay" (fun waker -> Event_heap.add t.heap ~time waker)

let delay t dt =
  if Time_ns.compare dt Time_ns.zero < 0 then invalid_arg "Scheduler.delay: negative";
  delay_until t (Time_ns.add t.now dt)

let yield t = suspend t ~name:"yield" (fun waker -> waker ())

let stop t = t.stopping <- true

let blocked_names t =
  Hashtbl.fold
    (fun _id e acc ->
      Format.asprintf "at t=%a fiber#%d (%s) blocked since t=%a on %s"
        Time_ns.pp t.now e.b_fiber.id e.b_fiber.name Time_ns.pp e.b_since
        e.b_why
      :: acc)
    t.blocked []
  |> List.sort compare

(* The inner loop drains every event scheduled for one instant in a single
   batch: the stop/horizon checks and the clock write happen once per
   distinct timestamp instead of once per event, and the heap is driven
   through the non-allocating [min_time]/[pop_min] pair. Wakers firing at
   the current instant land in the same batch (FIFO by heap sequence), so
   ordering is identical to the one-event-at-a-time loop. *)
let run ?until ?(allow_blocked = false) t =
  t.stopping <- false;
  let beyond time =
    match until with
    | None -> false
    | Some limit -> Time_ns.compare time limit > 0
  in
  let events0 = t.events in
  let rec loop () =
    if t.stopping then ()
    else if Event_heap.is_empty t.heap then begin
      if t.live > 0 && not allow_blocked && until = None then
        raise (Deadlock (blocked_names t))
    end
    else begin
      let time = Event_heap.min_time t.heap in
      if beyond time then ()
      else begin
        if t.count_sim_time then
          ignore (Atomic.fetch_and_add g_sim_ns (Time_ns.sub time t.now));
        t.now <- time;
        let continue = ref true in
        while !continue do
          let f = Event_heap.pop_min t.heap in
          t.events <- t.events + 1;
          f ();
          if
            t.stopping
            || Event_heap.is_empty t.heap
            || not (Time_ns.equal (Event_heap.min_time t.heap) time)
          then continue := false
        done;
        loop ()
      end
    end
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Atomic.fetch_and_add g_events (t.events - events0)))
    loop

let next_event_time t =
  if Event_heap.is_empty t.heap then None
  else Some (Event_heap.min_time t.heap)

let pending_events t = Event_heap.length t.heap
let blocked_report t = blocked_names t
