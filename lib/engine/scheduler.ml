exception Deadlock of string list
exception Stopped
exception Killed

type fiber = { id : int; name : string; domain : int option; epoch : int }

type blocked_entry = {
  b_fiber : fiber;
  b_why : string;
  b_since : Time_ns.t;
  b_kill : unit -> unit;  (* discontinue the stored continuation with Killed *)
}

type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable now : Time_ns.t;
  mutable next_fiber_id : int;
  mutable live : int;
  mutable stopping : bool;
  blocked : (int, blocked_entry) Hashtbl.t;
  domain_kills : (int, int) Hashtbl.t;
  mutable current : fiber option;
  prng : Prng.t;
  metrics : Metrics.t;
  mutable trace_slot : Trace.t option;
}

type _ Effect.t += Suspend : (string * ((unit -> unit) -> unit)) -> unit Effect.t

let create ?(seed = 0) ?(trace_capacity = 65536) () =
  let t =
    {
      heap = Event_heap.create ();
      now = Time_ns.zero;
      next_fiber_id = 0;
      live = 0;
      stopping = false;
      blocked = Hashtbl.create 64;
      domain_kills = Hashtbl.create 8;
      current = None;
      prng = Prng.create ~seed;
      metrics = Metrics.create ();
      trace_slot = None;
    }
  in
  (* The trace reads the clock through a closure because Trace cannot
     depend on this module (the scheduler owns the trace). *)
  t.trace_slot <- Some (Trace.create ~capacity:trace_capacity ~now:(fun () -> t.now) ());
  t

let now t = t.now
let prng t = t.prng
let live_fibers t = t.live
let metrics t = t.metrics

let trace t =
  match t.trace_slot with Some tr -> tr | None -> assert false

let at t time f =
  if Time_ns.compare time t.now < 0 then
    invalid_arg
      (Format.asprintf "Scheduler.at: time %a is before now %a" Time_ns.pp time
         Time_ns.pp t.now);
  Event_heap.add t.heap ~time f

let after t dt f = at t (Time_ns.add t.now dt) f

let domain_epoch t d = Option.value ~default:0 (Hashtbl.find_opt t.domain_kills d)

(* A fiber is dead once its domain has been killed after the fiber was
   spawned; fibers spawned after a restart carry the newer epoch and are
   unaffected by earlier kills. *)
let fiber_dead t fiber =
  match fiber.domain with
  | None -> false
  | Some d -> domain_epoch t d > fiber.epoch

(* Run a fiber body under the effect handler. [k] resumptions re-enter
   through this handler, so every blocking point in the fiber is covered. *)
let start_fiber t fiber f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          match e with
          | Killed -> t.live <- t.live - 1
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (why, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                if fiber_dead t fiber then discontinue k Killed
                else begin
                  let entry =
                    {
                      b_fiber = fiber;
                      b_why = why;
                      b_since = t.now;
                      b_kill =
                        (fun () ->
                          let prev = t.current in
                          t.current <- Some fiber;
                          discontinue k Killed;
                          t.current <- prev);
                    }
                  in
                  Hashtbl.replace t.blocked fiber.id entry;
                  let woken = ref false in
                  let waker () =
                    if fiber_dead t fiber then ()
                    else if !woken then
                      invalid_arg "Scheduler: waker invoked more than once"
                    else begin
                      woken := true;
                      Hashtbl.remove t.blocked fiber.id;
                      Event_heap.add t.heap ~time:t.now (fun () ->
                          let prev = t.current in
                          t.current <- Some fiber;
                          (if fiber_dead t fiber then discontinue k Killed
                           else continue k ());
                          t.current <- prev)
                    end
                  in
                  register waker
                end)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t ?(name = "fiber") ?domain f =
  let epoch = match domain with None -> 0 | Some d -> domain_epoch t d in
  let fiber = { id = t.next_fiber_id; name; domain; epoch } in
  t.next_fiber_id <- t.next_fiber_id + 1;
  t.live <- t.live + 1;
  Event_heap.add t.heap ~time:t.now (fun () ->
      if fiber_dead t fiber then t.live <- t.live - 1
      else begin
        let prev = t.current in
        t.current <- Some fiber;
        start_fiber t fiber f;
        t.current <- prev
      end)

let kill_domain t d =
  Hashtbl.replace t.domain_kills d (domain_epoch t d + 1);
  let victims =
    Hashtbl.fold
      (fun id e acc ->
        match e.b_fiber.domain with
        | Some dd when dd = d -> (id, e) :: acc
        | _ -> acc)
      t.blocked []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (id, e) ->
      Hashtbl.remove t.blocked id;
      e.b_kill ())
    victims;
  List.length victims

let suspend t ~name register =
  match t.current with
  | None -> invalid_arg "Scheduler.suspend: not inside a fiber"
  | Some _ -> Effect.perform (Suspend (name, register))

let delay_until t time =
  if Time_ns.compare time t.now > 0 then
    suspend t ~name:"delay" (fun waker -> Event_heap.add t.heap ~time waker)

let delay t dt =
  if Time_ns.compare dt Time_ns.zero < 0 then invalid_arg "Scheduler.delay: negative";
  delay_until t (Time_ns.add t.now dt)

let yield t = suspend t ~name:"yield" (fun waker -> waker ())

let stop t = t.stopping <- true

let blocked_names t =
  Hashtbl.fold
    (fun _id e acc ->
      Format.asprintf "at t=%a fiber#%d (%s) blocked since t=%a on %s"
        Time_ns.pp t.now e.b_fiber.id e.b_fiber.name Time_ns.pp e.b_since
        e.b_why
      :: acc)
    t.blocked []
  |> List.sort compare

let run ?until ?(allow_blocked = false) t =
  t.stopping <- false;
  let beyond time =
    match until with
    | None -> false
    | Some limit -> Time_ns.compare time limit > 0
  in
  let rec loop () =
    if t.stopping then ()
    else
      match Event_heap.peek_time t.heap with
      | None ->
        if t.live > 0 && not allow_blocked && until = None then
          raise (Deadlock (blocked_names t))
      | Some time when beyond time -> ()
      | Some _ ->
        (match Event_heap.pop t.heap with
        | None -> assert false
        | Some (time, f) ->
          t.now <- time;
          f ());
        loop ()
  in
  loop ()
