(** Deterministic discrete-event scheduler with direct-style fibers.

    Simulated application code (MPI programs, protocol state machines, the
    examples) is written as ordinary OCaml functions running inside
    {e fibers}. A fiber that performs a blocking simulation operation —
    [delay], waiting on an event queue, receiving a message — suspends via
    an OCaml 5 effect and is resumed by a later simulation event. The
    scheduler interleaves fibers at simulated-time granularity; there is no
    OS-level concurrency, so runs are fully deterministic for a given seed.

    Events scheduled for the same instant fire in scheduling order. *)

type t

exception Deadlock of string list
(** Raised by {!run} when no events remain but fibers are still blocked.
    Each entry reports the deadlock's simulated time, the fiber's id and
    name, when it blocked, and what it was waiting on, e.g.
    ["at t=12.5us fiber#3 (rank1) blocked since t=4.0us on mpi.recv"]. *)

exception Stopped
(** Raised inside {!run} processing when {!stop} was requested; callers of
    [run] do not see it. *)

exception Killed
(** Raised asynchronously inside a fiber whose domain was destroyed by
    {!kill_domain} — at the fiber's current (or next) blocking point.
    Fibers may catch it to run cleanup; an uncaught [Killed] terminates
    the fiber silently rather than aborting the run. *)

val create : ?seed:int -> ?trace_capacity:int -> unit -> t
(** [create ~seed ()] is a fresh scheduler at time 0. [seed] (default 0)
    initialises the PRNG tree used by simulation components.
    [trace_capacity] (default 65536) sizes the ring of the scheduler's
    own {!trace}. *)

val now : t -> Time_ns.t
(** Current simulated time. *)

val prng : t -> Prng.t
(** The scheduler's root PRNG; components should {!Prng.split} it. *)

val metrics : t -> Metrics.t
(** The metrics registry shared by every component driven by this
    scheduler. Enabled by default; one registry per simulated world. *)

val trace : t -> Trace.t
(** The span trace shared by every component driven by this scheduler.
    Disabled by default ({!Trace.enable} to start recording). *)

val spawn : t -> ?name:string -> ?domain:int -> (unit -> unit) -> unit
(** [spawn t ~name f] creates a fiber running [f], starting at the current
    simulated time (it runs when the scheduler reaches the corresponding
    event, not immediately). An exception escaping [f] aborts the whole
    run and is re-raised from {!run}.

    [domain] tags the fiber as resident on a fault domain (by convention a
    simulated node id) so {!kill_domain} can destroy it; untagged fibers
    are immortal. *)

val kill_domain : t -> int -> int
(** [kill_domain t d] destroys every live fiber spawned with [~domain:d]:
    blocked fibers are discontinued with {!Killed} immediately (in fiber-id
    order, deterministically), runnable ones at their next scheduling
    point, and not-yet-started ones never run. Fibers spawned with
    [~domain:d] {e after} this call belong to the node's next incarnation
    and are unaffected. Returns the number of blocked fibers killed
    synchronously. *)

val at : t -> Time_ns.t -> (unit -> unit) -> unit
(** [at t time f] schedules callback [f] at absolute [time], which must not
    be in the past. Callbacks must not block; blocking code belongs in a
    fiber ({!spawn}). *)

val after : t -> Time_ns.t -> (unit -> unit) -> unit
(** [after t dt f] is [at t (now t + dt) f]. *)

val delay : t -> Time_ns.t -> unit
(** Fiber-only. Suspends the calling fiber for [dt] of simulated time. *)

val delay_until : t -> Time_ns.t -> unit
(** Fiber-only. Suspends the calling fiber until the given absolute time;
    returns immediately if the time is not in the future. *)

val yield : t -> unit
(** Fiber-only. Re-queues the calling fiber at the current time, letting
    already-scheduled same-instant events run first. *)

val suspend : t -> name:string -> ((unit -> unit) -> unit) -> unit
(** [suspend t ~name register] is the primitive blocking operation:
    suspends the calling fiber and hands [register] a {e waker}. Invoking
    the waker (exactly once) schedules the fiber's resumption at the
    simulated time of the invocation. [name] labels the fiber's blocked
    state for {!Deadlock} reports. *)

val run : ?until:Time_ns.t -> ?allow_blocked:bool -> t -> unit
(** [run t] processes events until none remain. If fibers are still
    blocked at that point, raises {!Deadlock} unless [allow_blocked] is
    true. With [until], stops once the next event lies beyond [until]
    (pending events stay queued and blocked fibers are not an error). *)

val stop : t -> unit
(** Request that {!run} return after the current event completes. *)

val live_fibers : t -> int
(** Number of fibers spawned and not yet finished. *)

(** {1 Performance counters}

    Cheap run-loop instrumentation (plain integer increments on the hot
    path; also exported as the metrics probes ["sched.events_processed"],
    ["sched.fibers_spawned"] and ["sched.heap_peak"]). *)

val events_processed : t -> int
(** Events popped and executed by {!run} over this scheduler's lifetime. *)

val fibers_spawned : t -> int
(** Fibers ever created with {!spawn}. *)

val heap_peak : t -> int
(** High-water mark of the pending-event heap. *)

type totals = { t_events : int; t_fibers : int; t_sim_time : Time_ns.t }
(** Process-wide accumulation across {e every} scheduler instance:
    events processed, fibers spawned, and simulated time advanced. *)

val global_totals : unit -> totals
(** Snapshot of the process-wide totals. Harnesses meter an experiment —
    which may build many worlds — by taking the delta of two snapshots
    around it; paired with a wall clock this yields sim-events/sec. The
    counters are atomics, so parallel worlds (one scheduler per domain)
    accumulate race-free. *)

val count_sim_time : t -> bool -> unit
(** Whether {!run} credits this scheduler's clock advances to the global
    sim-time total (default true). A parallel world turns it off on every
    shard scheduler — S shards advance S clocks over the same interval —
    and credits the merged global clock once via {!add_global_sim_time},
    keeping totals identical to the sequential run. *)

val add_global_sim_time : Time_ns.t -> unit
(** Credit an externally-tracked clock advance to the global sim-time
    total (see {!count_sim_time}). *)

val next_event_time : t -> Time_ns.t option
(** Earliest pending event, if any — the shard barrier's reduction input. *)

val pending_events : t -> int
(** Number of queued events (cheap; heap length). *)

val blocked_report : t -> string list
(** The {!Deadlock}-style report for currently blocked fibers. The shard
    runtime aggregates these across domains before raising, since a
    windowed [run ~until] never raises {!Deadlock} itself. *)
