type t = {
  sched : Scheduler.t;
  cpu_name : string;
  lock : Sync.Semaphore.t;
  mutable due : Time_ns.t option; (* completion time of in-flight compute *)
  mutable stolen : Time_ns.t;
  mutable computed : Time_ns.t;
}

let create ?(name = "cpu") sched =
  let t =
    {
      sched;
      cpu_name = name;
      lock = Sync.Semaphore.create ~name:(name ^ ".lock") sched 1;
      due = None;
      stolen = Time_ns.zero;
      computed = Time_ns.zero;
    }
  in
  let m = Scheduler.metrics sched in
  let labels = [ ("cpu", name) ] in
  Metrics.probe m ~labels "cpu.stolen_us" (fun () -> Time_ns.to_us t.stolen);
  Metrics.probe m ~labels "cpu.compute_us" (fun () -> Time_ns.to_us t.computed);
  Metrics.probe m ~labels "cpu.occupancy" (fun () ->
      (* Fraction of elapsed simulated time this CPU spent executing
         application compute or stolen protocol work. *)
      let now = Time_ns.to_us (Scheduler.now sched) in
      if now <= 0. then 0.
      else (Time_ns.to_us t.computed +. Time_ns.to_us t.stolen) /. now);
  t

let name t = t.cpu_name

(* [steal] pushes [t.due] forward while we sleep, so we loop until the
   deadline stops moving. *)
let compute t d =
  if Time_ns.compare d Time_ns.zero < 0 then invalid_arg "Cpu.compute: negative";
  Sync.Semaphore.acquire t.lock;
  let start = Scheduler.now t.sched in
  t.computed <- Time_ns.add t.computed d;
  t.due <- Some (Time_ns.add start d);
  let rec wait_until_done () =
    match t.due with
    | None -> assert false
    | Some target ->
      if Time_ns.compare (Scheduler.now t.sched) target < 0 then begin
        Scheduler.delay_until t.sched target;
        wait_until_done ()
      end
  in
  wait_until_done ();
  t.due <- None;
  let tr = Scheduler.trace t.sched in
  if Trace.enabled tr then
    Trace.complete tr ~subsys:"cpu" ~proc:t.cpu_name ~start
      ~finish:(Scheduler.now t.sched) "compute";
  Sync.Semaphore.release t.lock

let steal t d =
  if Time_ns.compare d Time_ns.zero < 0 then invalid_arg "Cpu.steal: negative";
  t.stolen <- Time_ns.add t.stolen d;
  match t.due with
  | None -> ()
  | Some target -> t.due <- Some (Time_ns.add target d)

let stolen_total t = t.stolen
let compute_total t = t.computed
let busy t = t.due <> None
