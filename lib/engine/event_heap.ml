(* The heap is stored as three parallel arrays rather than an array of
   {time; seq; value} records: [add]/[pop_min] then allocate nothing
   (amortised), where the record layout cost one 4-word allocation per
   scheduled event — the dominant allocation of a discrete-event run.
   Times are Time_ns.t = int, so comparisons are immediate.

   The tree is 4-ary: children of [i] sit at [4i+1 .. 4i+4]. Halving the
   depth matters because every processed event pays one sift-down from
   the root, and during an all-to-all phase the pending set is hundreds
   of events deep; the four children also share cache lines. Sifts move
   a hole instead of swapping — three array writes per level rather than
   six — and the (time, seq) order is exactly the binary heap's, so
   event ordering (and with it every seeded run) is unchanged. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable peak : int;
}

exception Empty

let create () =
  {
    times = [||];
    seqs = [||];
    values = [||];
    size = 0;
    next_seq = 0;
    peak = 0;
  }

let is_empty t = t.size = 0
let length t = t.size
let peak_size t = t.peak

let grow t value =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap value in
    Array.blit t.times 0 nt 0 t.size;
    Array.blit t.seqs 0 ns 0 t.size;
    Array.blit t.values 0 nv 0 t.size;
    t.times <- nt;
    t.seqs <- ns;
    t.values <- nv
  end

(* Both sifts lift slot [i] out as a hole, move displaced entries into
   it one write per field, and drop the lifted entry at the hole's final
   position. *)
let sift_up t i =
  let ht = t.times.(i) and hs = t.seqs.(i) and hv = t.values.(i) in
  let j = ref i in
  let moving = ref true in
  while !moving && !j > 0 do
    let parent = (!j - 1) / 4 in
    let pt = t.times.(parent) in
    if ht < pt || (ht = pt && hs < t.seqs.(parent)) then begin
      t.times.(!j) <- pt;
      t.seqs.(!j) <- t.seqs.(parent);
      t.values.(!j) <- t.values.(parent);
      j := parent
    end
    else moving := false
  done;
  t.times.(!j) <- ht;
  t.seqs.(!j) <- hs;
  t.values.(!j) <- hv

let sift_down t i =
  let ht = t.times.(i) and hs = t.seqs.(i) and hv = t.values.(i) in
  let n = t.size in
  let j = ref i in
  let moving = ref true in
  while !moving do
    let first = (4 * !j) + 1 in
    if first >= n then moving := false
    else begin
      let last_child = if first + 3 < n - 1 then first + 3 else n - 1 in
      let m = ref first in
      for c = first + 1 to last_child do
        let ct = t.times.(c) and mt = t.times.(!m) in
        if ct < mt || (ct = mt && t.seqs.(c) < t.seqs.(!m)) then m := c
      done;
      let mt = t.times.(!m) in
      if mt < ht || (mt = ht && t.seqs.(!m) < hs) then begin
        t.times.(!j) <- mt;
        t.seqs.(!j) <- t.seqs.(!m);
        t.values.(!j) <- t.values.(!m);
        j := !m
      end
      else moving := false
    end
  done;
  t.times.(!j) <- ht;
  t.seqs.(!j) <- hs;
  t.values.(!j) <- hv

let add t ~time value =
  grow t value;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.values.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  if t.size > t.peak then t.peak <- t.size;
  sift_up t i

let min_time t = if t.size = 0 then raise Empty else t.times.(0)

let pop_min t =
  if t.size = 0 then raise Empty
  else begin
    let top = t.values.(0) in
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      t.times.(0) <- t.times.(last);
      t.seqs.(0) <- t.seqs.(last);
      (* The vacated slot keeps a duplicate reference to the moved value,
         which stays live inside the heap — nothing dead is pinned. *)
      t.values.(0) <- t.values.(last);
      sift_down t 0
    end;
    top
  end

let pop t =
  if t.size = 0 then None
  else
    let time = t.times.(0) in
    Some (time, pop_min t)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.size <- 0

let rec drain t f =
  match pop t with
  | None -> ()
  | Some (time, v) ->
    f time v;
    drain t f
