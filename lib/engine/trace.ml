let src = Logs.Src.create "sim" ~doc:"Simulation event trace"

module Log = (val Logs.src_log src : Logs.LOG)

type phase = Instant | Complete of Time_ns.t | Begin | End

type span = {
  time : Time_ns.t;
  subsys : string;
  name : string;
  proc : string option;
  msg_id : int option;
  phase : phase;
}

type t = {
  now : unit -> Time_ns.t;
  capacity : int;
  (* Allocated on first [enable]: a disabled trace must cost nothing, and
     every world carries one (the scheduler's default ring is 64 Ki slots —
     too much to pay up front for runs that never trace). *)
  mutable ring : span option array;
  mutable next : int;
  mutable count : int;
  mutable is_enabled : bool;
  log : bool;
}

let create ?(capacity = 4096) ?(log = false) ~now () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    now;
    capacity;
    ring = [||];
    next = 0;
    count = 0;
    is_enabled = false;
    log;
  }

let enable t =
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity None;
  t.is_enabled <- true

let disable t = t.is_enabled <- false
let enabled t = t.is_enabled

let record t span =
  t.ring.(t.next) <- Some span;
  t.next <- (t.next + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1;
  if t.log then
    Log.debug (fun m ->
        m "[%a] %s: %s" Time_ns.pp span.time span.subsys span.name)

let instant t ?(subsys = "") ?proc ?msg_id name =
  if t.is_enabled then
    record t { time = t.now (); subsys; name; proc; msg_id; phase = Instant }

let complete t ?(subsys = "") ?proc ?msg_id ~start ~finish name =
  if t.is_enabled then
    record t
      {
        time = start;
        subsys;
        name;
        proc;
        msg_id;
        phase = Complete (Time_ns.sub finish start);
      }

let begin_span t ?(subsys = "") ?proc ?msg_id name =
  if t.is_enabled then
    record t { time = t.now (); subsys; name; proc; msg_id; phase = Begin }

let end_span t ?(subsys = "") ?proc ?msg_id name =
  if t.is_enabled then
    record t { time = t.now (); subsys; name; proc; msg_id; phase = End }

(* Back-compatible flat-string entry points: an [emit] is an instant span. *)
let emit t ?subsys msg = instant t ?subsys msg

let emitf t ?subsys fmt =
  if t.is_enabled then Format.kasprintf (fun msg -> emit t ?subsys msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let spans t =
  let out = ref [] in
  for i = 0 to t.count - 1 do
    let idx = (t.next - t.count + i + (2 * t.capacity)) mod t.capacity in
    match t.ring.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  List.rev !out

let events t = List.map (fun s -> (s.time, s.subsys, s.name)) (spans t)

let dump ppf t =
  let line s =
    let phase =
      match s.phase with
      | Instant -> ""
      | Complete d -> Format.asprintf " (+%a)" Time_ns.pp d
      | Begin -> " <begin>"
      | End -> " <end>"
    in
    let proc = match s.proc with None -> "" | Some p -> " @" ^ p in
    Format.fprintf ppf "[%a]%s %s: %s%s@." Time_ns.pp s.time proc s.subsys
      s.name phase
  in
  List.iter line (spans t)

(* -- Chrome trace_event exporter ---------------------------------------- *)

module Chrome = struct
  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let str b s =
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'

  (* trace_event timestamps are microseconds; emit fractional µs to keep
     nanosecond resolution. *)
  let ts b (t : Time_ns.t) =
    Buffer.add_string b (Printf.sprintf "%.3f" (Time_ns.to_us t))

  let metadata b ~first ~pid ~tid ~name ~value =
    if not first then Buffer.add_string b ",\n";
    Buffer.add_string b
      (Printf.sprintf "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":" pid tid);
    str b name;
    Buffer.add_string b ",\"args\":{\"name\":";
    str b value;
    Buffer.add_string b "}}"

  let event b ~first ~pid ~tid span =
    if not first then Buffer.add_string b ",\n";
    let ph =
      match span.phase with
      | Instant -> "i"
      | Complete _ -> "X"
      | Begin -> "B"
      | End -> "E"
    in
    Buffer.add_string b "{\"ph\":";
    str b ph;
    Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d,\"ts\":" pid tid);
    ts b span.time;
    (match span.phase with
    | Complete d ->
      Buffer.add_string b ",\"dur\":";
      ts b d
    | Instant -> Buffer.add_string b ",\"s\":\"t\""
    | Begin | End -> ());
    Buffer.add_string b ",\"name\":";
    str b span.name;
    if not (String.equal span.subsys "") then begin
      Buffer.add_string b ",\"cat\":";
      str b span.subsys
    end;
    (match span.msg_id with
    | Some id ->
      Buffer.add_string b (Printf.sprintf ",\"args\":{\"msg_id\":%d}" id)
    | None -> ());
    Buffer.add_string b "}"

  (* Group spans of one process-group (pid) by their [proc] field; each
     distinct proc becomes a Chrome thread with a thread_name record. *)
  let add_group b ~first ~pid ~name spans =
    let tids = Hashtbl.create 8 in
    let tid_of proc =
      match Hashtbl.find_opt tids proc with
      | Some tid -> tid
      | None ->
        let tid = Hashtbl.length tids + 1 in
        Hashtbl.add tids proc tid;
        tid
    in
    metadata b ~first ~pid ~tid:0 ~name:"process_name" ~value:name;
    List.iter
      (fun span ->
        let tid = tid_of (Option.value span.proc ~default:"main") in
        event b ~first:false ~pid ~tid span)
      spans;
    Hashtbl.iter
      (fun proc tid ->
        metadata b ~first:false ~pid ~tid ~name:"thread_name" ~value:proc)
      tids

  let to_string groups =
    let b = Buffer.create 8192 in
    Buffer.add_string b "{\"traceEvents\":[\n";
    List.iteri
      (fun i (name, spans) ->
        add_group b ~first:(i = 0) ~pid:(i + 1) ~name spans)
      groups;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
    Buffer.contents b
end

let export_chrome ?(name = "sim") t = Chrome.to_string [ (name, spans t) ]
