(** Run reports: render a {!Metrics.Snapshot.t} as an aligned text table
    or as a JSON document (hand-rolled; no external JSON dependency). *)

type format = Table | Json

val format_of_string : string -> format option
(** Recognises ["table"] and ["json"]. *)

val to_json : Metrics.Snapshot.t -> string
(** A [{"metrics": [...]}] document; one object per instrument with
    [name], [labels], [type], and [value] fields. *)

val pp_table : ?series_points:bool -> Format.formatter -> Metrics.Snapshot.t -> unit
(** Aligned name/kind/value table. With [series_points:true], series
    entries are followed by their individual (x, y) rows. *)

val print : ?format:format -> Format.formatter -> Metrics.Snapshot.t -> unit
(** Render in the chosen [format] (default [Table]): {!pp_table} with
    series points, or {!to_json}. The one entry point the CLIs'
    [--metrics\[=table|json\]] flags feed. *)
