(** Entry point of the simulation engine library. See the individual
    modules for documentation. *)

module Time_ns = Time_ns
module Prng = Prng
module Event_heap = Event_heap
module Stats = Stats
module Metrics = Metrics
module Report = Report
module Scheduler = Scheduler
module Shard = Shard
module Sync = Sync
module Cpu = Cpu
module Trace = Trace
