(** Conservative time-window runtime for parallel discrete-event runs.

    Partitions a simulation across OCaml 5 domains: each {e shard} owns
    one {!Scheduler} (event heap, clock, PRNG, metrics) and the runtime
    synchronizes them with a conservative window barrier. Given
    [lookahead] — the minimum latency of any link whose endpoints live on
    different shards — an event at time [t] can only create remote work
    at or after [t + lookahead], so the half-open window
    [\[start, start + lookahead)] is safe to process without
    communication. Cross-shard work travels as timestamped messages
    ({!post}) drained at window boundaries in an order that is a pure
    function of the simulation — sorted by (time, source shard,
    per-source sequence) — never of OS thread timing.

    Determinism contract: if every message a shard posts is itself a
    deterministic function of that shard's event stream (the fabric
    guarantees this by deriving fault and routing decisions from per-pair
    PRNG streams, not from shared generators), then a run with [N] shards
    produces the same per-node event history as the sequential reference
    for the same seed. The sequential scheduler remains that reference;
    [--domains 1] never touches this module. *)

type 'msg t

val create :
  scheds:Scheduler.t array -> lookahead:Time_ns.t -> unit -> 'msg t
(** [create ~scheds ~lookahead ()] is a runtime over one scheduler per
    shard. [lookahead] must be positive — a zero-latency cross-shard link
    admits no conservative window. Raises [Invalid_argument] otherwise. *)

val domains : _ t -> int
(** Number of shards (= OCaml domains used by {!run}). *)

val lookahead : _ t -> Time_ns.t
(** The window width. *)

val rounds : _ t -> int
(** Window rounds completed by the last {!run} — a cheap progress and
    overhead indicator (events per round ≫ 1 is where speedup lives). *)

val sched : _ t -> int -> Scheduler.t
(** [sched t k] is shard [k]'s scheduler. *)

val post : 'msg t -> src:int -> dst:int -> time:Time_ns.t -> 'msg -> unit
(** [post t ~src ~dst ~time msg] sends [msg] to shard [dst], to be
    delivered at simulated [time]. Must be called from shard [src]'s
    domain during its window. Raises [Invalid_argument] if [time] lands
    inside the current window — that would violate the lookahead bound
    the barrier relies on. *)

val run :
  ?until:Time_ns.t ->
  ?allow_blocked:bool ->
  'msg t ->
  deliver:(shard:int -> time:Time_ns.t -> 'msg -> unit) ->
  unit
(** [run t ~deliver] drives all shards to completion: shard 0 on the
    calling domain, shards [1..N-1] on freshly spawned domains.
    [deliver ~shard ~time msg] is invoked on shard [shard]'s domain at a
    window boundary for each message posted to it; it should schedule
    the message into [sched t shard] (e.g. {!Scheduler.at}).

    Mirrors {!Scheduler.run}: with [until], stops once the earliest
    pending event anywhere lies beyond it; without it, raises
    {!Scheduler.Deadlock} (aggregated across shards) if fibers are still
    blocked when no events remain, unless [allow_blocked]. An exception
    raised by any shard's events aborts the whole run at the next window
    boundary and is re-raised here. Global sim-time totals are credited
    once for the merged clock, not once per shard. *)
