type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* Stateless stream derivation: mix the index into the seed through two
   rounds of the output permutation. Unlike [split] this does not advance
   any generator, so shard k's stream is a pure function of (seed, k) —
   the same no matter how many shards exist or in what order they are
   created. Index 0 is remixed too: no derived stream may coincide with
   the sequential root stream [create ~seed]. *)
let derived_seed ~seed ~index =
  Int64.to_int (mix64 (Int64.add (Int64.of_int seed)
                         (Int64.mul (Int64.of_int (index + 1)) golden_gamma)))

let derive ~seed ~index = create ~seed:(derived_seed ~seed ~index)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
