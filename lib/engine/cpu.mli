(** Host-processor occupancy model.

    The application-bypass phenomenon the paper demonstrates is about
    {e which processor} executes protocol code and {e when}. This module
    models a host CPU precisely enough for that:

    {ul
    {- An application fiber performs computation with {!compute}; while it
       runs, the fiber makes no library calls (the paper's "work
       interval").}
    {- Asynchronous protocol work executed on the host — interrupt
       handlers, kernel-module message processing — charges the CPU via
       {!steal}: if a computation is in flight its completion is pushed
       back by the stolen time, which is how interrupt overhead perturbs
       the application.}
    {- Protocol work executed on a NIC processor uses a different [Cpu]
       (or none), leaving the host computation untouched — application
       bypass.}}

    Computations on one CPU are serialised FIFO. *)

type t

val create : ?name:string -> Scheduler.t -> t
(** Registers ["cpu.stolen_us"], ["cpu.compute_us"] and ["cpu.occupancy"]
    probes labelled [("cpu", name)] in the scheduler's metrics registry.
    Completed {!compute} intervals emit ["cpu"] trace spans when the
    scheduler's trace is enabled. *)

val name : t -> string

val compute : t -> Time_ns.t -> unit
(** Fiber-only. Occupies the CPU for the given duration of simulated time,
    extended by any time stolen (interrupts) while it runs. *)

val steal : t -> Time_ns.t -> unit
(** Charge asynchronous host-side protocol work to this CPU. Extends the
    in-flight {!compute}, if any; always accounted in {!stolen_total}. *)

val stolen_total : t -> Time_ns.t
(** Cumulative time consumed via {!steal}. *)

val compute_total : t -> Time_ns.t
(** Cumulative time requested via {!compute} (excluding stolen
    extensions). *)

val busy : t -> bool
(** Whether a computation is currently in flight. *)
