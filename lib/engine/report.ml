(* Render a Metrics snapshot as an aligned text table or as JSON. JSON is
   hand-rolled (the toolchain has no JSON library); output is plain
   trace-viewer/jq-compatible UTF-8. *)

type format = Table | Json

let format_of_string = function
  | "table" -> Some Table
  | "json" -> Some Json
  | _ -> None

(* -- JSON helpers ------------------------------------------------------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_string b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let json_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else Buffer.add_string b "null"

let json_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      json_string b k;
      Buffer.add_char b ':';
      json_string b v)
    labels;
  Buffer.add_char b '}'

let json_entry b (e : Metrics.Snapshot.entry) =
  Buffer.add_string b "{\"name\":";
  json_string b e.Metrics.Snapshot.name;
  Buffer.add_string b ",\"labels\":";
  json_labels b e.Metrics.Snapshot.labels;
  (match e.Metrics.Snapshot.value with
  | Metrics.Snapshot.Counter v ->
    Buffer.add_string b ",\"type\":\"counter\",\"value\":";
    Buffer.add_string b (string_of_int v)
  | Metrics.Snapshot.Gauge v ->
    Buffer.add_string b ",\"type\":\"gauge\",\"value\":";
    json_float b v
  | Metrics.Snapshot.Summary { count; mean; min; max; stddev; total } ->
    Buffer.add_string b ",\"type\":\"summary\",\"value\":{\"count\":";
    Buffer.add_string b (string_of_int count);
    Buffer.add_string b ",\"mean\":";
    json_float b mean;
    Buffer.add_string b ",\"min\":";
    json_float b min;
    Buffer.add_string b ",\"max\":";
    json_float b max;
    Buffer.add_string b ",\"stddev\":";
    json_float b stddev;
    Buffer.add_string b ",\"total\":";
    json_float b total;
    Buffer.add_char b '}'
  | Metrics.Snapshot.Series pts ->
    Buffer.add_string b ",\"type\":\"series\",\"value\":[";
    List.iteri
      (fun i (x, y) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '[';
        json_float b x;
        Buffer.add_char b ',';
        json_float b y;
        Buffer.add_char b ']')
      pts;
    Buffer.add_char b ']');
  Buffer.add_char b '}'

let to_json (snap : Metrics.Snapshot.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      json_entry b e)
    snap;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* -- Aligned table ------------------------------------------------------ *)

let value_cell (e : Metrics.Snapshot.entry) =
  match e.Metrics.Snapshot.value with
  | Metrics.Snapshot.Counter v -> string_of_int v
  | Metrics.Snapshot.Gauge v -> Printf.sprintf "%.4g" v
  | Metrics.Snapshot.Summary { count; mean; min; max; stddev; _ } ->
    Printf.sprintf "n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g" count mean min
      max stddev
  | Metrics.Snapshot.Series pts -> Printf.sprintf "%d points" (List.length pts)

let kind_cell (e : Metrics.Snapshot.entry) =
  match e.Metrics.Snapshot.value with
  | Metrics.Snapshot.Counter _ -> "counter"
  | Metrics.Snapshot.Gauge _ -> "gauge"
  | Metrics.Snapshot.Summary _ -> "summary"
  | Metrics.Snapshot.Series _ -> "series"

let name_cell (e : Metrics.Snapshot.entry) =
  Format.asprintf "%s%a" e.Metrics.Snapshot.name Metrics.pp_labels
    e.Metrics.Snapshot.labels

let pp_table ?(series_points = false) ppf (snap : Metrics.Snapshot.t) =
  let rows =
    List.map (fun e -> (name_cell e, kind_cell e, value_cell e, e)) snap
  in
  let w1 =
    List.fold_left (fun acc (n, _, _, _) -> Stdlib.max acc (String.length n)) 4 rows
  in
  let w2 =
    List.fold_left (fun acc (_, k, _, _) -> Stdlib.max acc (String.length k)) 4 rows
  in
  Format.fprintf ppf "%-*s  %-*s  %s@." w1 "name" w2 "kind" "value";
  List.iter
    (fun (n, k, v, e) ->
      Format.fprintf ppf "%-*s  %-*s  %s@." w1 n w2 k v;
      if series_points then
        match e.Metrics.Snapshot.value with
        | Metrics.Snapshot.Series pts ->
          List.iter
            (fun (x, y) -> Format.fprintf ppf "%-*s    %.4f  %.4f@." w1 "" x y)
            pts
        | _ -> ())
    rows

let print ?(format = Table) ppf snap =
  match format with
  | Table -> pp_table ppf snap
  | Json -> Format.pp_print_string ppf (to_json snap)
