(** The one transport signature every message-passing stack implements.

    The paper's thesis is that Portals' building blocks are one of
    several lower interfaces over which the {e same} upper-layer
    protocol (MPI point-to-point) can be expressed — the comparison of
    §5 only makes sense because MPICH/GM, MPICH over the kernel RTS/CTS
    modules and MPICH over Portals 3.0 present the same contract
    upward. {!S} is that contract: the intersection of what the MPI
    device layer needs from a transport, including the peer-liveness
    semantics ({!S.on_peer_failure}/{!S.failed_ranks}/{!S.reconnect})
    that earlier revisions bolted onto individual backends.

    [Mpi.Make (T : Transport.S)] derives the rest of the MPI surface
    (blocking calls, [waitall], the dissemination barrier) from an
    implementation of this signature, so a new backend is a new [S]
    instance and nothing else. Four instances exist: Portals
    ([Mpi.Mpi_portals.Tx]), GM ([Mpi.Mpi_gm.Tx]), the kernel RTS/CTS
    stack ([Mpi.Mpi_rtscts.Tx]) and the ibverbs-style RDMA stack
    ([Mpi.Mpi_ibverbs.Tx]). *)

type status = { source : int; tag : int; length : int }
(** Completion status of a point-to-point operation: matched source
    rank, matched tag, bytes delivered (sends report their own rank and
    the posted tag). *)

exception Peer_failed of int
(** Raised (with the peer's rank) when an operation cannot complete
    because the peer's node crashed: a blocked {!S.wait} on a receive
    from the failed rank, a rendezvous send whose partner died
    mid-handshake, or — connection-oriented backends only — new traffic
    toward a peer not yet {!S.reconnect}ed. One exception shared by
    every backend, so upper layers handle peer death uniformly. *)

val any_source : int
(** -1: matches any sender. *)

val any_tag : int
(** -1: matches any tag. *)

(** The transport contract. All operations must run inside a simulation
    fiber: they charge simulated time (library call overhead, host
    copies) and {!S.wait} blocks the calling fiber. *)
module type S = sig
  val name : string
  (** Stable identifier of the stack (["portals"], ["gm"], ["rtscts"],
      ["ibverbs"]); keys benchmark-matrix rows and CLI selection. *)

  type t
  (** An endpoint: one rank's view of the communication world. *)

  type request
  (** A pending nonblocking operation. *)

  val create : Simnet.Transport.t -> ranks:Simnet.Proc_id.t array -> rank:int -> t
  (** Bring up the endpoint for [rank] on the wire [ranks] describes.
      Every endpoint of a job must exist before any rank sends — there
      is no connection retry. Backends with tunables also export a
      [create_with] taking their config record; this arity is the one
      the functor and the conformance suite use. *)

  val finalize : t -> unit
  (** Tear the endpoint down (collective in spirit: peers mid-protocol
      with this rank will see their transfers dropped). *)

  val rank : t -> int
  val size : t -> int

  val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
  (** Nonblocking send; data is captured at call time. [context]
      (default 0, the world) isolates communication spaces — messages
      only match receives posted with the same context. May raise
      {!Peer_failed} immediately on connection-oriented backends when
      [dst] is marked failed. *)

  val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request
  (** Nonblocking receive; [source]/[tag] default to the wildcards
      {!any_source}/{!any_tag}, [context] to the world. *)

  val test : t -> request -> status option
  (** Nonblocking completion check; drives the library progress engine.
      Raises {!Peer_failed} if the request failed. *)

  val wait : t -> request -> status
  (** Blocks the calling fiber until the request completes; raises
      {!Peer_failed} if it cannot (the blocked fiber is woken on peer
      crash rather than left to deadlock). *)

  val progress : t -> unit
  (** One bare library entry with no request — the "sprinkled MPI
      calls" of §5.3. For backends without application bypass this is
      the only time protocol work happens. *)

  (** {2 Peer liveness}

      The uniform failure surface (previously GM-only). Connectionless
      backends (Portals: no per-peer state, §3) implement
      {!reconnect} as pure bookkeeping and clear failed marks on node
      restart; connection-oriented backends (GM tokens, ibverbs queue
      pairs) keep a peer failed until explicitly reconnected. *)

  val on_peer_failure : t -> (rank:int -> unit) -> unit
  (** Register a callback fired from the endpoint when a peer rank's
      node crashes. *)

  val failed_ranks : t -> int list
  (** Ranks currently considered failed, ascending. *)

  val reconnect : t -> rank:int -> unit
  (** Re-admit a restarted peer. No-op beyond bookkeeping on
      connectionless backends; rebuilds per-peer state on
      connection-oriented ones. *)

  (** {2 Metrics} *)

  val counters : t -> (string * int) list
  (** Backend counters (sends by protocol, completions, ...). Each
      value must be monotone non-decreasing over the endpoint's life —
      the conformance suite checks this — so they can be read as rates
      by sampling. *)
end

type packed = (module S)
(** A backend chosen at run time (CLI [--transports] lists, the
    benchmark matrix). *)
