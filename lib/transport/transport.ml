type status = { source : int; tag : int; length : int }

exception Peer_failed of int

let any_source = -1
let any_tag = -1

module type S = sig
  val name : string

  type t
  type request

  val create : Simnet.Transport.t -> ranks:Simnet.Proc_id.t array -> rank:int -> t
  val finalize : t -> unit
  val rank : t -> int
  val size : t -> int
  val isend : t -> ?context:int -> dst:int -> tag:int -> bytes -> request
  val irecv : t -> ?context:int -> ?source:int -> ?tag:int -> bytes -> request
  val test : t -> request -> status option
  val wait : t -> request -> status
  val progress : t -> unit
  val on_peer_failure : t -> (rank:int -> unit) -> unit
  val failed_ranks : t -> int list
  val reconnect : t -> rank:int -> unit
  val counters : t -> (string * int) list
end

type packed = (module S)
