test/core/test_portals_ext.mli:
