test/core/test_portals_ext.ml: Alcotest Bytes Char Errors Event Gen Handle List Match_bits Match_id Md Ni Portals QCheck QCheck_alcotest Scheduler Sim_engine Simnet
