test/core/test_portals_types.ml: Acl Alcotest Bytes Errors Event Format Handle Int64 List Match_bits Match_id Md Me Option Portals QCheck QCheck_alcotest Result Sim_engine Simnet Wire
