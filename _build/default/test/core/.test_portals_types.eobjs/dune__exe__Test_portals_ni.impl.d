test/core/test_portals_ni.ml: Acl Alcotest Buffer Bytes Char Cpu Errors Event Gen Handle List Match_bits Match_id Md Ni Portals Printf QCheck QCheck_alcotest Scheduler Sim_engine Simnet Wire
