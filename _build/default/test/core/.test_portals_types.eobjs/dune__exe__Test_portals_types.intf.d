test/core/test_portals_types.mli:
