test/core/test_portals_ni.mli:
