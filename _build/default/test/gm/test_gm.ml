open Sim_engine

let proc nid pid = Simnet.Proc_id.make ~nid ~pid

let setup () =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_mcp ~nodes:3
  in
  let tp = Simnet.Transport.offload fabric in
  (sched, tp)

let tests =
  [
    Alcotest.test_case "message lands in a token without polling" `Quick
      (fun () ->
        (* OS bypass: the data is in the token buffer after the run even
           though the receiver never polled. *)
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        let token = Bytes.create 64 in
        Gm.provide_receive_token rx token;
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "dma-deposit");
        Scheduler.run sched;
        Alcotest.(check string) "in token buffer" "dma-deposit"
          (Bytes.sub_string token 0 11);
        Alcotest.(check int) "event pending, unobserved" 1 (Gm.pending_events rx));
    Alcotest.test_case "poll drains completions in order" `Quick (fun () ->
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        for _ = 1 to 3 do
          Gm.provide_receive_token rx (Bytes.create 16)
        done;
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        List.iter
          (fun s -> Gm.send txp ~dst:(proc 1 0) (Bytes.of_string s))
          [ "one"; "two"; "three" ];
        Scheduler.run sched;
        let next () =
          match Gm.poll rx with
          | Some (Gm.Recv_complete { buffer; length; _ }) ->
            Bytes.sub_string buffer 0 length
          | Some (Gm.Send_complete _) -> "send?"
          | None -> "none"
        in
        Alcotest.(check string) "1st" "one" (next ());
        Alcotest.(check string) "2nd" "two" (next ());
        Alcotest.(check string) "3rd" "three" (next ());
        Alcotest.(check bool) "drained" true (Gm.poll rx = None));
    Alcotest.test_case "no token means a counted drop" `Quick (fun () ->
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "lost");
        Scheduler.run sched;
        Alcotest.(check int) "dropped" 1 (Gm.stats rx).Gm.drops_no_token;
        Alcotest.(check int) "no event" 0 (Gm.pending_events rx));
    Alcotest.test_case "token too small is skipped for a bigger one" `Quick
      (fun () ->
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        let small = Bytes.create 4 and big = Bytes.create 64 in
        Gm.provide_receive_token rx small;
        Gm.provide_receive_token rx big;
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "needs-the-big-one");
        Scheduler.run sched;
        Alcotest.(check string) "landed in big" "needs-the-big-one"
          (Bytes.sub_string big 0 17);
        (* The small token survives for later. *)
        Alcotest.(check int) "small still pooled" 1 (Gm.stats rx).Gm.tokens_available);
    Alcotest.test_case "send completion event fires" `Quick (fun () ->
        let sched, tp = setup () in
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        Gm.provide_receive_token rx (Bytes.create 16);
        Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "bye");
        Scheduler.run sched;
        (match Gm.poll txp with
        | Some (Gm.Send_complete { length; _ }) ->
          Alcotest.(check int) "length" 3 length
        | Some (Gm.Recv_complete _) | None -> Alcotest.fail "expected send event"));
    Alcotest.test_case "wait_event blocks until something arrives" `Quick
      (fun () ->
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        Gm.provide_receive_token rx (Bytes.create 16);
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        let woke = ref 0 in
        Scheduler.spawn sched (fun () ->
            Gm.wait_event rx;
            woke := Scheduler.now sched);
        Scheduler.at sched (Time_ns.ms 2.0) (fun () ->
            Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "x"));
        Scheduler.run sched;
        Alcotest.(check bool) "woke after the send" true (!woke > Time_ns.ms 2.0));
    Alcotest.test_case "closed port stops accepting" `Quick (fun () ->
        let sched, tp = setup () in
        let rx = Gm.open_port tp ~id:(proc 1 0) in
        Gm.provide_receive_token rx (Bytes.create 16);
        Gm.close rx;
        let txp = Gm.open_port tp ~id:(proc 0 0) in
        Gm.send txp ~dst:(proc 1 0) (Bytes.of_string "x");
        Scheduler.run sched;
        Alcotest.(check int) "nothing received" 0 (Gm.stats rx).Gm.receives);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tokens never double-fill" ~count:100
         QCheck.(list_of_size Gen.(int_range 1 10) (int_range 1 32))
         (fun sizes ->
           let sched, tp = setup () in
           let rx = Gm.open_port tp ~id:(proc 1 0) in
           List.iter (fun _ -> Gm.provide_receive_token rx (Bytes.create 32)) sizes;
           let txp = Gm.open_port tp ~id:(proc 0 0) in
           List.iteri
             (fun i len ->
               Gm.send txp ~dst:(proc 1 0) (Bytes.make len (Char.chr (65 + (i mod 26)))))
             sizes;
           Scheduler.run sched;
           (* Every message got its own token, in order, undamaged. *)
           let rec collect acc =
             match Gm.poll rx with
             | Some (Gm.Recv_complete { buffer; length; _ }) ->
               collect (Bytes.sub_string buffer 0 length :: acc)
             | Some (Gm.Send_complete _) -> collect acc
             | None -> List.rev acc
           in
           let got = collect [] in
           List.length got = List.length sizes
           && List.for_all2
                (fun s (i, len) -> s = String.make len (Char.chr (65 + (i mod 26))))
                got
                (List.mapi (fun i l -> (i, l)) sizes)));
  ]

let () = Alcotest.run "gm" [ ("port", tests) ]
