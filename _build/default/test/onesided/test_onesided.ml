open Sim_engine

(* [n] PEs, each with regions of the given sizes allocated up front (the
   symmetric-heap discipline); [f os syms rank] runs per PE. Returns the
   per-PE endpoints for post-run inspection. *)
let with_pes ?(n = 2) ~regions f =
  let world = Runtime.create_world ~nodes:n () in
  let pes =
    Array.mapi
      (fun rank pid ->
        let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
        let os = Onesided.create ni ~ranks:world.Runtime.ranks ~rank () in
        let syms = List.map (fun size -> Onesided.alloc os size) regions in
        (os, syms))
      world.Runtime.ranks
  in
  Array.iteri
    (fun rank (os, syms) ->
      Scheduler.spawn world.Runtime.sched ~name:(Printf.sprintf "pe%d" rank)
        (fun () -> f os syms rank))
    pes;
  Runtime.run world;
  pes

let sym1 = function [ s ] -> s | _ -> Alcotest.fail "expected one region"

let put_get_tests =
  [
    Alcotest.test_case "put lands in the remote region" `Quick (fun () ->
        let pes =
          with_pes ~regions:[ 64 ] (fun os syms rank ->
              if rank = 0 then begin
                Onesided.put os (sym1 syms) ~pe:1 ~offset:8
                  (Bytes.of_string "one-sided");
                Onesided.quiet os
              end)
        in
        let os1, syms = pes.(1) in
        Alcotest.(check string) "remote bytes" "one-sided"
          (Bytes.sub_string (Onesided.region_bytes os1 (sym1 syms)) 8 9));
    Alcotest.test_case "get reads remote memory" `Quick (fun () ->
        let fetched = ref "" in
        let world = Runtime.create_world ~nodes:2 () in
        let mk rank =
          let ni =
            Portals.Ni.create world.Runtime.transport
              ~id:world.Runtime.ranks.(rank) ()
          in
          Onesided.create ni ~ranks:world.Runtime.ranks ~rank ()
        in
        let os0 = mk 0 and os1 = mk 1 in
        let _s0 = Onesided.alloc os0 32 in
        let s1 = Onesided.alloc os1 32 in
        Bytes.blit_string "remote-payload!" 0 (Onesided.region_bytes os1 s1) 0 15;
        Scheduler.spawn world.Runtime.sched (fun () ->
            fetched :=
              Bytes.to_string (Onesided.get os0 s1 ~pe:1 ~offset:7 ~len:8));
        Runtime.run world;
        Alcotest.(check string) "read across" "payload!" !fetched);
    Alcotest.test_case "quiet waits for every acknowledgment" `Quick (fun () ->
        let outstanding_before = ref (-1) in
        let outstanding_after = ref (-1) in
        ignore
          (with_pes ~regions:[ 4096 ] (fun os syms rank ->
               if rank = 0 then begin
                 for i = 0 to 9 do
                   Onesided.put os (sym1 syms) ~pe:1 ~offset:(i * 16)
                     (Bytes.make 16 (Char.chr (48 + i)))
                 done;
                 outstanding_before := Onesided.outstanding_puts os;
                 Onesided.quiet os;
                 outstanding_after := Onesided.outstanding_puts os
               end));
        Alcotest.(check bool) "some were in flight" true (!outstanding_before > 0);
        Alcotest.(check int) "none after quiet" 0 !outstanding_after);
    Alcotest.test_case "wait_until observes a remote flag write" `Quick
      (fun () ->
        (* The shmem producer/consumer idiom: PE0 puts data then sets
           PE1's flag; PE1 blocks on the flag, then reads the data. *)
        let seen = ref "" in
        ignore
          (with_pes ~regions:[ 1; 64 ] (fun os syms rank ->
               match syms with
               | [ flag; data ] ->
                 if rank = 0 then begin
                   Onesided.put os data ~pe:1 ~offset:0
                     (Bytes.of_string "flag-protected");
                   Onesided.quiet os;
                   Onesided.put os flag ~pe:1 ~offset:0
                     (Bytes.make 1 Onesided.barrier_value);
                   Onesided.quiet os
                 end
                 else begin
                   Onesided.wait_until os flag ~offset:0
                     ~value:Onesided.barrier_value;
                   seen := Bytes.sub_string (Onesided.region_bytes os data) 0 14
                 end
               | _ -> Alcotest.fail "two regions expected"));
        Alcotest.(check string) "consumer saw producer's data" "flag-protected"
          !seen);
    Alcotest.test_case "puts to distinct offsets do not clobber" `Quick
      (fun () ->
        let pes =
          with_pes ~n:3 ~regions:[ 300 ] (fun os syms rank ->
              if rank > 0 then begin
                Onesided.put os (sym1 syms) ~pe:0 ~offset:(rank * 100)
                  (Bytes.make 100 (Char.chr (48 + rank)));
                Onesided.quiet os
              end)
        in
        let os0, syms = pes.(0) in
        let region = Onesided.region_bytes os0 (sym1 syms) in
        Alcotest.(check char) "pe1's bytes" '1' (Bytes.get region 150);
        Alcotest.(check char) "pe2's bytes" '2' (Bytes.get region 250));
    Alcotest.test_case "bounds are enforced locally" `Quick (fun () ->
        ignore
          (with_pes ~regions:[ 8 ] (fun os syms rank ->
               if rank = 0 then begin
                 Alcotest.check_raises "put overrun"
                   (Invalid_argument "Onesided.put: outside the region")
                   (fun () ->
                     Onesided.put os (sym1 syms) ~pe:1 ~offset:4 (Bytes.create 8));
                 Alcotest.check_raises "get overrun"
                   (Invalid_argument "Onesided.get: outside the region")
                   (fun () ->
                     ignore (Onesided.get os (sym1 syms) ~pe:1 ~offset:0 ~len:9))
               end)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random puts then region matches mirror" ~count:25
         QCheck.(
           list_of_size
             Gen.(int_range 1 10)
             (pair (int_range 0 15) (int_range 1 16)))
         (fun writes ->
           let region_size = 256 in
           let mirror = Bytes.make region_size '\x00' in
           let pes =
             with_pes ~regions:[ region_size ] (fun os syms rank ->
                 if rank = 0 then begin
                   List.iteri
                     (fun i (slot, len) ->
                       let offset = slot * 16 in
                       let payload = Bytes.make len (Char.chr (33 + (i mod 90))) in
                       Bytes.blit payload 0 mirror offset len;
                       Onesided.put os (sym1 syms) ~pe:1 ~offset payload)
                     writes;
                   Onesided.quiet os
                 end)
           in
           let os1, syms = pes.(1) in
           Bytes.equal mirror (Onesided.region_bytes os1 (sym1 syms))));
  ]

let () = Alcotest.run "onesided" [ ("put_get", put_get_tests) ]
