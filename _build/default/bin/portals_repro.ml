(* Command-line driver for the reproduction: run any experiment (table or
   figure) on demand with tweakable parameters.

     dune exec bin/portals_repro.exe -- --help
     dune exec bin/portals_repro.exe -- fig6 --sizes 50000 --work 0,10,20
     dune exec bin/portals_repro.exe -- latency --size 1024 *)

open Cmdliner

let ppf = Format.std_formatter

(* --- shared arguments -------------------------------------------------- *)

let transport_conv =
  let parse = function
    | "offload" | "mcp" -> Ok Runtime.Offload
    | "kernel" -> Ok Runtime.Kernel_interrupt
    | "rtscts" -> Ok Runtime.Rtscts
    | s -> Error (`Msg (Printf.sprintf "unknown transport %S" s))
  in
  let print fmt t = Format.fprintf fmt "%s" (Runtime.transport_kind_name t) in
  Arg.conv (parse, print)

let backend_conv =
  let parse = function
    | "portals" -> Ok `Portals
    | "gm" -> Ok `Gm
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt = function
    | `Portals -> Format.fprintf fmt "portals"
    | `Gm -> Format.fprintf fmt "gm"
  in
  Arg.conv (parse, print)

let floats_conv = Arg.list ~sep:',' Arg.float
let ints_conv = Arg.list ~sep:',' Arg.int

(* --- commands ----------------------------------------------------------- *)

let tables_cmd =
  let run () = Experiments.Tables.pp ppf (Experiments.Tables.run ()) in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate Tables 1-4 (wire formats)")
    Term.(const run $ const ())

let protocols_cmd =
  let run transport =
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_put ~transport ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_get ~transport ())
  in
  let transport =
    Arg.(value & opt transport_conv Runtime.Offload
         & info [ "transport" ] ~doc:"offload | kernel | rtscts")
  in
  Cmd.v
    (Cmd.info "protocols" ~doc:"Regenerate Figures 1-2 (put/get timelines)")
    Term.(const run $ transport)

let translation_cmd =
  let run depths =
    Experiments.Translation.pp ppf (Experiments.Translation.run ~depths ())
  in
  let depths =
    Arg.(value & opt ints_conv Experiments.Translation.default_depths
         & info [ "depths" ] ~doc:"Match-list depths to sweep")
  in
  Cmd.v
    (Cmd.info "translation" ~doc:"Regenerate Figures 3-4 (address translation)")
    Term.(const run $ depths)

let latency_cmd =
  let run size iterations =
    Experiments.Latency.pp ppf
      (Experiments.Latency.run ~message_size:size ~iterations ())
  in
  let size =
    Arg.(value & opt int 0 & info [ "size" ] ~doc:"Message size in bytes")
  in
  let iterations =
    Arg.(value & opt int 50 & info [ "iterations" ] ~doc:"Ping-pong rounds")
  in
  Cmd.v (Cmd.info "latency" ~doc:"Ping-pong latency across placements (L1)")
    Term.(const run $ size $ iterations)

let bandwidth_cmd =
  let run sizes count =
    Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ~sizes ~count ())
  in
  let sizes =
    Arg.(value & opt ints_conv Experiments.Bandwidth.default_sizes
         & info [ "sizes" ] ~doc:"Message sizes in bytes")
  in
  let count =
    Arg.(value & opt int 16 & info [ "count" ] ~doc:"Messages per size")
  in
  Cmd.v (Cmd.info "bandwidth" ~doc:"Streaming bandwidth vs size (B1)")
    Term.(const run $ sizes $ count)

let fig5_cmd =
  let run backend transport size batch work tests =
    let r =
      Experiments.Fig5.run
        {
          Experiments.Fig5.backend;
          transport;
          message_size = size;
          batch;
          iterations = 4;
          work = Sim_engine.Time_ns.ms work;
          tests_during_work = tests;
        }
    in
    Format.fprintf ppf
      "fig5: backend=%s work=%.1fms -> mean wait %.3f ms (max %.3f), work took %.3f ms@."
      (match backend with `Portals -> "portals" | `Gm -> "gm")
      work
      (r.Experiments.Fig5.mean_wait /. 1000.)
      (r.Experiments.Fig5.max_wait /. 1000.)
      (r.Experiments.Fig5.mean_work_elapsed /. 1000.)
  in
  let backend =
    Arg.(value & opt backend_conv `Portals & info [ "backend" ] ~doc:"portals | gm")
  in
  let transport =
    Arg.(value & opt transport_conv Runtime.Rtscts
         & info [ "transport" ] ~doc:"offload | kernel | rtscts")
  in
  let size = Arg.(value & opt int 50_000 & info [ "size" ] ~doc:"Message size") in
  let batch = Arg.(value & opt int 10 & info [ "batch" ] ~doc:"Messages per batch") in
  let work = Arg.(value & opt float 10.0 & info [ "work" ] ~doc:"Work interval, ms") in
  let tests =
    Arg.(value & opt int 0 & info [ "tests" ] ~doc:"MPI test calls during work")
  in
  Cmd.v (Cmd.info "fig5" ~doc:"One application-bypass measurement (Table 5)")
    Term.(const run $ backend $ transport $ size $ batch $ work $ tests)

let fig6_cmd =
  let run size work_ms iterations =
    Experiments.Fig6.pp ppf
      (Experiments.Fig6.run ~message_size:size ~work_ms ~iterations ())
  in
  let size = Arg.(value & opt int 50_000 & info [ "size" ] ~doc:"Message size") in
  let work =
    Arg.(value & opt floats_conv Experiments.Fig6.work_intervals_ms
         & info [ "work" ] ~doc:"Work intervals (ms), comma separated")
  in
  let iterations =
    Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"Averaging repetitions")
  in
  Cmd.v (Cmd.info "fig6" ~doc:"Regenerate Figure 6 (application bypass)")
    Term.(const run $ size $ work $ iterations)

let memory_cmd =
  let run jobs =
    Experiments.Scaling.pp_memory ppf
      (Experiments.Scaling.run_memory ~job_sizes:jobs ())
  in
  let jobs =
    Arg.(value & opt ints_conv [ 4; 8; 16; 32; 64 ]
         & info [ "jobs" ] ~doc:"Job sizes to sweep")
  in
  Cmd.v (Cmd.info "memory" ~doc:"Unexpected-buffer memory vs job size (S1)")
    Term.(const run $ jobs)

let collectives_cmd =
  let run nodes =
    Experiments.Scaling.pp_collectives ppf
      (Experiments.Scaling.run_collectives ~node_counts:nodes ())
  in
  let nodes =
    Arg.(value & opt ints_conv [ 2; 4; 8; 16; 32; 64; 128; 256 ]
         & info [ "nodes" ] ~doc:"Node counts to sweep")
  in
  Cmd.v (Cmd.info "collectives" ~doc:"Collective scaling (S2)")
    Term.(const run $ nodes)

let drops_cmd =
  let run () = Experiments.Drops.pp ppf (Experiments.Drops.run ()) in
  Cmd.v (Cmd.info "drops" ~doc:"Trigger and count every drop reason (A1)")
    Term.(const run $ const ())

let ablation_cmd =
  let run () =
    Experiments.Ablation.pp_threshold ppf (Experiments.Ablation.run_threshold ());
    Experiments.Ablation.pp_interrupts ppf (Experiments.Ablation.run_interrupts ())
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations (A2)")
    Term.(const run $ const ())

let all_cmd =
  let run () =
    Experiments.Tables.pp ppf (Experiments.Tables.run ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_put ());
    Experiments.Protocols.pp ppf (Experiments.Protocols.run_get ());
    Experiments.Translation.pp ppf (Experiments.Translation.run ());
    Experiments.Latency.pp ppf (Experiments.Latency.run ());
    Experiments.Bandwidth.pp ppf (Experiments.Bandwidth.run ());
    Experiments.Fig6.pp ppf (Experiments.Fig6.run ());
    Experiments.Scaling.pp_memory ppf (Experiments.Scaling.run_memory ());
    Experiments.Scaling.pp_collectives ppf (Experiments.Scaling.run_collectives ());
    Experiments.Drops.pp ppf (Experiments.Drops.run ());
    Experiments.Ablation.pp_threshold ppf (Experiments.Ablation.run_threshold ());
    Experiments.Ablation.pp_interrupts ppf (Experiments.Ablation.run_interrupts ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(const run $ const ())

let () =
  let doc = "Reproduction harness for Portals 3.0 (IPPS 2002)" in
  let info = Cmd.info "portals_repro" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            tables_cmd; protocols_cmd; translation_cmd; latency_cmd;
            bandwidth_cmd; fig5_cmd; fig6_cmd; memory_cmd; collectives_cmd;
            drops_cmd; ablation_cmd; all_cmd;
          ]))
