(* The paper's experiment, live (Table 5 / Figures 5-6).

   Runs the application-bypass test at a few work intervals and prints
   the two curves the paper contrasts: MPICH/GM makes no progress during
   the work loop; MPICH over Portals 3.0 finishes virtually all message
   handling inside it.

     dune exec examples/bypass_demo.exe *)

let () =
  Format.printf
    "The Table 5 experiment: pre-post 10 x 50KB receives; barrier; send;@.";
  Format.printf
    "work with NO library calls; then time how much waiting remains.@.@.";
  let work_points = [ 0.; 5.; 15.; 30. ] in
  let run ~label ~backend ~transport =
    Format.printf "%s@." label;
    List.iter
      (fun ms ->
        let r =
          Experiments.Fig5.run
            {
              Experiments.Fig5.default_params with
              Experiments.Fig5.backend;
              transport;
              work = Sim_engine.Time_ns.ms ms;
            }
        in
        Format.printf
          "  work %5.1f ms -> remaining wait %8.3f ms (work actually took %.2f ms)@."
          ms
          (r.Experiments.Fig5.mean_wait /. 1000.)
          (r.Experiments.Fig5.mean_work_elapsed /. 1000.))
      work_points;
    Format.printf "@."
  in
  run ~label:"MPICH/GM (progress only inside library calls):" ~backend:`Gm
    ~transport:Runtime.Offload;
  run ~label:"MPICH over Portals 3.0 (kernel module, interrupt-driven):"
    ~backend:`Portals ~transport:Runtime.Rtscts;
  run ~label:"MPICH over Portals 3.0 (NIC-offload MCP):" ~backend:`Portals
    ~transport:Runtime.Offload;
  Format.printf
    "Reading: the GM wait stays flat at the full transfer cost; the Portals@.";
  Format.printf
    "waits collapse to bookkeeping once the work interval covers the traffic@.";
  Format.printf "— application bypass, the paper's Figure 6.@."
