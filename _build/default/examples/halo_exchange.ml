(* Halo exchange: the workload the paper's progress-rule discussion is
   about (section 5.2).

   A 1-D domain decomposition of a heat-diffusion stencil: each rank owns
   a strip of cells and every iteration exchanges one-cell "halos" with
   its neighbours, then computes its interior. With MPI over Portals the
   halo messages land in the pre-posted receive buffers *while the
   interior is being computed* — communication and computation genuinely
   overlap with no library calls mid-compute. The program reports the
   mean wait that remains after each compute phase (it should be a few
   microseconds of bookkeeping, not a message transfer) and verifies the
   numerical result against a sequential reference.

     dune exec examples/halo_exchange.exe *)

open Sim_engine

let ranks = 8
let cells_per_rank = 64
let iterations = 20
let interior_compute = Time_ns.us 200.0

let pack a =
  let b = Bytes.create (Array.length a * 8) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)) a;
  b

let unpack b =
  Array.init (Bytes.length b / 8) (fun i ->
      Int64.float_of_bits (Bytes.get_int64_le b (i * 8)))

(* Sequential reference: the same diffusion over the whole domain. *)
let reference () =
  let n = ranks * cells_per_rank in
  let cur = Array.init n (fun i -> float_of_int (i mod 17)) in
  let next = Array.make n 0.0 in
  for _ = 1 to iterations do
    for i = 0 to n - 1 do
      let left = if i = 0 then 0.0 else cur.(i - 1) in
      let right = if i = n - 1 then 0.0 else cur.(i + 1) in
      next.(i) <- (left +. cur.(i) +. right) /. 3.0
    done;
    Array.blit next 0 cur 0 n
  done;
  cur

let () =
  let world = Runtime.create_world ~nodes:ranks () in
  let endpoints =
    Array.init ranks (fun rank ->
        Mpi.create_portals world.Runtime.transport ~ranks:world.Runtime.ranks
          ~rank ())
  in
  let wait_after_compute = Stats.Summary.create ~name:"wait" () in
  let gathered = Array.make ranks [||] in
  Runtime.spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      let cpu = Runtime.host_cpu_of_rank world rank in
      let n = cells_per_rank in
      (* Strip with two ghost cells. *)
      let cur = Array.make (n + 2) 0.0 in
      let next = Array.make (n + 2) 0.0 in
      for i = 0 to n - 1 do
        cur.(i + 1) <- float_of_int (((rank * n) + i) mod 17)
      done;
      for _iter = 1 to iterations do
        (* Pre-post halo receives, then send our edge cells. *)
        let left_buf = Bytes.create 8 and right_buf = Bytes.create 8 in
        let recvs =
          (if rank > 0 then [ Mpi.irecv ep ~source:(rank - 1) ~tag:1 left_buf ]
           else [])
          @
          if rank < ranks - 1 then
            [ Mpi.irecv ep ~source:(rank + 1) ~tag:2 right_buf ]
          else []
        in
        let sends =
          (if rank > 0 then
             [ Mpi.isend ep ~dst:(rank - 1) ~tag:2 (pack [| cur.(1) |]) ]
           else [])
          @
          if rank < ranks - 1 then
            [ Mpi.isend ep ~dst:(rank + 1) ~tag:1 (pack [| cur.(n) |]) ]
          else []
        in
        (* Interior compute overlaps the halo traffic: no MPI calls here. *)
        Cpu.compute cpu interior_compute;
        let before = Scheduler.now world.Runtime.sched in
        ignore (Mpi.waitall ep (sends @ recvs));
        Stats.Summary.observe wait_after_compute
          (Time_ns.to_us (Time_ns.sub (Scheduler.now world.Runtime.sched) before));
        (* Apply halos and advance the stencil. *)
        cur.(0) <- (if rank > 0 then (unpack left_buf).(0) else 0.0);
        cur.(n + 1) <- (if rank < ranks - 1 then (unpack right_buf).(0) else 0.0);
        for i = 1 to n do
          next.(i) <- (cur.(i - 1) +. cur.(i) +. cur.(i + 1)) /. 3.0
        done;
        Array.blit next 1 cur 1 n
      done;
      (* Gather results at rank 0 for verification. *)
      if rank <> 0 then Mpi.send ep ~dst:0 ~tag:99 (pack (Array.sub cur 1 n))
      else begin
        gathered.(0) <- Array.sub cur 1 n;
        for _ = 1 to ranks - 1 do
          let buf = Bytes.create (n * 8) in
          let st = Mpi.recv ep ~tag:99 buf in
          gathered.(st.Mpi.source) <- unpack buf
        done
      end;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world;
  let result = Array.concat (Array.to_list gathered) in
  let expect = reference () in
  let max_err = ref 0.0 and checksum = ref 0.0 in
  Array.iteri
    (fun i v ->
      let e = Float.abs (v -. expect.(i)) in
      if e > !max_err then max_err := e;
      checksum := !checksum +. v)
    result;
  Format.printf "halo exchange: %d ranks x %d cells, %d iterations@." ranks
    cells_per_rank iterations;
  Format.printf "simulated time: %a@." Time_ns.pp
    (Scheduler.now world.Runtime.sched);
  Format.printf "checksum %.6f, max error vs sequential reference %.2e@."
    !checksum !max_err;
  Format.printf
    "mean wait after each %.0fus compute phase: %.2f us (overlap works)@."
    (Time_ns.to_us interior_compute)
    (Stats.Summary.mean wait_after_compute);
  if !max_err > 1e-9 then begin
    Format.printf "MISMATCH@.";
    exit 1
  end
  else Format.printf "verified: distributed result matches the reference@."
