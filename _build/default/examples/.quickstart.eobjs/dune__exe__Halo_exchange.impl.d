examples/halo_exchange.ml: Array Bytes Cpu Float Format Int64 Mpi Runtime Scheduler Sim_engine Stats Time_ns
