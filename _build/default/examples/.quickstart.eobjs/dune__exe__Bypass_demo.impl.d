examples/bypass_demo.ml: Experiments Format List Runtime Sim_engine
