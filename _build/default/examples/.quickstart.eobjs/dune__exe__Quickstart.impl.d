examples/quickstart.ml: Array Bytes Cpu Format Portals Runtime Scheduler Sim_engine Simnet Time_ns
