examples/quickstart.mli:
