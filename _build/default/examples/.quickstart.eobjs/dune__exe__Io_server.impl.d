examples/io_server.ml: Array Bytes Char Cpu Format Mpi Portals Printf Runtime Scheduler Sim_engine Time_ns
