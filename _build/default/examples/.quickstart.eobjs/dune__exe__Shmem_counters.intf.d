examples/shmem_counters.mli:
