examples/bypass_demo.mli:
