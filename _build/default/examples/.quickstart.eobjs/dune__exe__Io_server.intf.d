examples/io_server.mli:
