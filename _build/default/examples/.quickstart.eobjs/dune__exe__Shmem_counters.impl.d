examples/shmem_counters.ml: Array Bytes Cpu Format Int64 Onesided Portals Printf Runtime Scheduler Sim_engine Time_ns
