examples/halo_exchange.mli:
