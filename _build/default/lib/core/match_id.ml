type component = Any | Id of int
type t = { nid : component; pid : component }

let any = { nid = Any; pid = Any }

let of_proc (p : Simnet.Proc_id.t) =
  { nid = Id p.Simnet.Proc_id.nid; pid = Id p.Simnet.Proc_id.pid }

let make ~nid ~pid = { nid; pid }

let component_matches c v = match c with Any -> true | Id id -> id = v

let matches t (p : Simnet.Proc_id.t) =
  component_matches t.nid p.Simnet.Proc_id.nid
  && component_matches t.pid p.Simnet.Proc_id.pid

let equal a b = a = b

let pp_component ppf = function
  | Any -> Format.pp_print_string ppf "*"
  | Id id -> Format.pp_print_int ppf id

let pp ppf t = Format.fprintf ppf "%a:%a" pp_component t.nid pp_component t.pid
