(** Portals 3.0: protocol building blocks for low overhead communication.

    This library implements the message passing API of Brightwell, Riesen,
    Lawry and Maccabe (IPPS 2002): connectionless, reliable, in-order
    matching put/get between processes, with match lists, memory
    descriptors, circular event queues and access control — designed so
    that all message selection and delivery can proceed without the
    application's involvement (application bypass).

    Start from {!Ni} — one network interface per process — and the
    {!Simnet.Transport} implementations that place protocol processing on
    a simulated NIC ({!Simnet.Transport.offload}) or in the host kernel
    ({!Simnet.Transport.kernel_interrupt}). *)

module Errors = Errors
module Handle = Handle
module Match_bits = Match_bits
module Match_id = Match_id
module Event = Event
module Md = Md
module Me = Me
module Acl = Acl
module Wire = Wire
module Ni = Ni
