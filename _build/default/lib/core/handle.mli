(** Object handles and generation-checked handle tables.

    The Portals API never exposes pointers: memory descriptors, match
    entries and event queues are referred to by handles, and handles
    travel on the wire (a put request carries the initiator's MD handle so
    the acknowledgment can route back to it, Table 1). A handle is an index
    plus a generation counter; resolving a stale handle — the object was
    unlinked and its slot reused — fails cleanly, which is exactly the
    "memory descriptor identified in the request doesn't exist" check of
    §4.8. *)

type t
(** An opaque handle. Handles from different tables are not distinguished
    by type; each table checks generations, so cross-table confusion
    resolves as invalid. *)

val none : t
(** The distinguished null handle ([PTL_HANDLE_NONE]): never resolves. *)

val is_none : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_wire : t -> int64
(** Wire image of a handle (index and generation packed). *)

val of_wire : int64 -> t

module Table : sig
  (** A slot table with free-list reuse and per-slot generations. *)

  type handle := t
  type 'a t

  val create : ?initial_capacity:int -> unit -> 'a t

  val alloc : 'a t -> 'a -> handle
  (** Store a value, returning its handle. The table grows as needed. *)

  val find : 'a t -> handle -> 'a option
  (** [None] if the handle is null, stale, or out of range. *)

  val free : 'a t -> handle -> bool
  (** Release a slot; subsequent {!find}s of the same handle fail. Returns
      false if the handle did not resolve. *)

  val live_count : 'a t -> int

  val iter : 'a t -> (handle -> 'a -> unit) -> unit
  (** Visit every live entry. *)
end
