(** Match bits: the extra addressing component Portals adds to the usual
    (process, buffer, offset) triple (§4.4).

    Every put/get request carries 64 match bits. Each match entry holds a
    pattern of the same width plus {e ignore bits} — the "don't care" mask
    of Figure 3. An entry matches a request when all non-ignored bits
    agree. *)

type t = int64

val zero : t
val of_int64 : int64 -> t
val to_int64 : t -> int64
val of_int : int -> t

val all_ones : t
(** All 64 bits set; as ignore bits this matches anything. *)

val matches : mbits:t -> match_bits:t -> ignore_bits:t -> bool
(** [matches ~mbits ~match_bits ~ignore_bits] is true when the incoming
    request bits [mbits] agree with [match_bits] on every bit clear in
    [ignore_bits]: [(mbits lxor match_bits) land (lnot ignore_bits) = 0]. *)

val field : shift:int -> width:int -> int -> t
(** [field ~shift ~width v] places the low [width] bits of [v] at bit
    position [shift] — a helper for packing structured tags (the MPI layer
    packs context/rank/tag this way). Raises [Invalid_argument] if [v]
    does not fit. *)

val extract : shift:int -> width:int -> t -> int
(** Inverse of {!field}. *)

val mask : shift:int -> width:int -> t
(** A contiguous mask of [width] ones starting at [shift]. *)

val logor : t -> t -> t
val lognot : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
