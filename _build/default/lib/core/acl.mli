(** Access control lists (§4.5).

    An ACL is an array of entries, each pairing a process pattern with a
    portal table index pattern. Every incoming request carries a
    {e cookie} — an index into this array. The request is rejected unless
    the entry at the cookie exists, its process pattern matches the
    requesting process, and its portal pattern matches the requested
    portal index. Wildcards widen entries.

    Per §4.5's initialisation convention, entry 0 admits every process of
    the same parallel application to every portal, entry 1 admits all
    system processes, and the remaining entries deny until configured. *)

type entry = {
  allowed_id : Match_id.t;
  allowed_portal : int option;  (** [None] = any portal table index. *)
}

type t

val create : size:int -> t
(** [size] entries, all denying. Raises [Invalid_argument] if [size < 0]. *)

val size : t -> int

val set : t -> int -> entry -> (unit, Errors.t) result
(** [Error Invalid_ac_index] when out of range ([PtlACEntry]). *)

val get : t -> int -> entry option
(** [None] when out of range or unset. *)

val default_cookie_job : int
(** Conventional cookie (0) for peers in the same application. *)

val default_cookie_system : int
(** Conventional cookie (1) for system processes. *)

val install_defaults : t -> job_id:Match_id.t -> unit
(** Install the §4.5 convention: entry 0 = processes matching [job_id] on
    any portal; entry 1 = any process on any portal (system services). No
    effect on entries the table is too small to hold. *)

type failure =
  | Bad_cookie  (** Cookie outside the table or entry unset. *)
  | Id_mismatch  (** Requesting process does not match the entry. *)
  | Portal_mismatch  (** Requested portal does not match the entry. *)

val pp_failure : Format.formatter -> failure -> unit

val check :
  t -> cookie:int -> src:Simnet.Proc_id.t -> portal_index:int -> (unit, failure) result
