lib/core/event.ml: Array Format Handle Match_bits Sim_engine Simnet
