lib/core/handle.ml: Array Format Int64
