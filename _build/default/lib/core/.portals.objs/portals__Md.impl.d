lib/core/md.ml: Array Bytes Event Format Handle List
