lib/core/event.mli: Format Handle Match_bits Sim_engine Simnet
