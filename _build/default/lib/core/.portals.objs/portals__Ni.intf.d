lib/core/ni.mli: Acl Errors Event Format Handle Match_bits Match_id Md Sim_engine Simnet
