lib/core/wire.ml: Bytes Format Handle Int32 Int64 Match_bits Simnet
