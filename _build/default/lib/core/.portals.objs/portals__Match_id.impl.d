lib/core/match_id.ml: Format Simnet
