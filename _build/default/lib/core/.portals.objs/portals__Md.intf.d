lib/core/md.mli: Event Format Handle
