lib/core/wire.mli: Format Handle Match_bits Simnet
