lib/core/acl.ml: Array Errors Format Match_id
