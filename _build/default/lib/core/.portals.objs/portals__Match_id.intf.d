lib/core/match_id.mli: Format Simnet
