lib/core/me.mli: Handle Match_bits Match_id Md Simnet
