lib/core/match_bits.ml: Format Int64 Printf
