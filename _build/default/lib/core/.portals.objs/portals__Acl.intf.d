lib/core/acl.mli: Errors Format Match_id Simnet
