lib/core/match_bits.mli: Format
