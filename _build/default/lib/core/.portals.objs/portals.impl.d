lib/core/portals.ml: Acl Errors Event Handle Match_bits Match_id Md Me Ni Wire
