lib/core/ni.ml: Acl Array Bytes Errors Event Format Handle List Match_id Md Me Option Result Scheduler Sim_engine Simnet Time_ns Wire
