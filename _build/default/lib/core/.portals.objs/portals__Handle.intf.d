lib/core/handle.mli: Format
