lib/core/me.ml: Handle List Match_bits Match_id Md
