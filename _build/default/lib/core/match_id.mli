(** Process identifiers with wildcards.

    Match entries and access control entries name peers with optional
    [PTL_NID_ANY]/[PTL_PID_ANY] wildcards: "a target process can choose to
    accept message operations from any specific process" (§4.2) or leave
    either component open. *)

type component = Any | Id of int

type t = { nid : component; pid : component }

val any : t
(** Matches every process. *)

val of_proc : Simnet.Proc_id.t -> t
(** Exactly this process, no wildcards. *)

val make : nid:component -> pid:component -> t

val matches : t -> Simnet.Proc_id.t -> bool
(** Component-wise equality with [Any] matching everything. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
