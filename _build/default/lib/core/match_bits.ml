type t = int64

let zero = 0L
let of_int64 x = x
let to_int64 x = x
let of_int = Int64.of_int
let all_ones = -1L

let matches ~mbits ~match_bits ~ignore_bits =
  Int64.equal
    (Int64.logand (Int64.logxor mbits match_bits) (Int64.lognot ignore_bits))
    0L

let mask ~shift ~width =
  if width <= 0 || shift < 0 || shift + width > 64 then
    invalid_arg "Match_bits.mask: bad field";
  if width = 64 then all_ones
  else Int64.shift_left (Int64.sub (Int64.shift_left 1L width) 1L) shift

let field ~shift ~width v =
  let m = mask ~shift:0 ~width in
  let v64 = Int64.of_int v in
  if not (Int64.equal (Int64.logand v64 (Int64.lognot m)) 0L) then
    invalid_arg
      (Printf.sprintf "Match_bits.field: %d does not fit in %d bits" v width);
  Int64.shift_left v64 shift

let extract ~shift ~width t =
  Int64.to_int (Int64.logand (Int64.shift_right_logical t shift) (mask ~shift:0 ~width))

let logor = Int64.logor
let lognot = Int64.lognot
let equal = Int64.equal
let pp ppf t = Format.fprintf ppf "0x%016Lx" t
