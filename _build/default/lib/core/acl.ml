type entry = { allowed_id : Match_id.t; allowed_portal : int option }

type t = { entries : entry option array }

let create ~size =
  if size < 0 then invalid_arg "Acl.create: negative size";
  { entries = Array.make size None }

let size t = Array.length t.entries

let set t i entry =
  if i < 0 || i >= Array.length t.entries then Error Errors.Invalid_ac_index
  else begin
    t.entries.(i) <- Some entry;
    Ok ()
  end

let get t i =
  if i < 0 || i >= Array.length t.entries then None else t.entries.(i)

let default_cookie_job = 0
let default_cookie_system = 1

let install_defaults t ~job_id =
  if Array.length t.entries > 0 then
    t.entries.(0) <- Some { allowed_id = job_id; allowed_portal = None };
  if Array.length t.entries > 1 then
    t.entries.(1) <- Some { allowed_id = Match_id.any; allowed_portal = None }

type failure = Bad_cookie | Id_mismatch | Portal_mismatch

let pp_failure ppf f =
  Format.pp_print_string ppf
    (match f with
    | Bad_cookie -> "invalid access control entry"
    | Id_mismatch -> "process id rejected by access control entry"
    | Portal_mismatch -> "portal index rejected by access control entry")

let check t ~cookie ~src ~portal_index =
  match get t cookie with
  | None -> Error Bad_cookie
  | Some entry ->
    if not (Match_id.matches entry.allowed_id src) then Error Id_mismatch
    else begin
      match entry.allowed_portal with
      | Some p when p <> portal_index -> Error Portal_mismatch
      | Some _ | None -> Ok ()
    end
