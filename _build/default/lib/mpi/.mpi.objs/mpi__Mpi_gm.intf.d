lib/mpi/mpi_gm.mli: Gm Sim_engine Simnet
