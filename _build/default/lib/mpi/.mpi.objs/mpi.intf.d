lib/mpi/mpi.mli: Envelope Mpi_gm Mpi_portals Nx Simnet
