lib/mpi/mpi_portals.mli: Portals Sim_engine Simnet
