lib/mpi/nx.mli: Simnet
