lib/mpi/mpi_gm.ml: Array Bytes Envelope Gm Hashtbl Printf Queue Scheduler Sim_engine Simnet Time_ns
