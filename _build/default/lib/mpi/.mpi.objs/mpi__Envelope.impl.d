lib/mpi/envelope.ml: Bytes Format Int32 Int64 Portals Printf
