lib/mpi/mpi_portals.ml: Array Bytes Envelope Hashtbl Int64 List Portals Printf Queue Scheduler Sim_engine Simnet Time_ns
