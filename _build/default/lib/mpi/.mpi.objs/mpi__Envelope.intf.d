lib/mpi/envelope.mli: Format Portals
