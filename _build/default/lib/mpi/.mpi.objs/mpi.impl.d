lib/mpi/mpi.ml: Bytes Envelope List Mpi_gm Mpi_portals Nx Option
