lib/mpi/nx.ml: Envelope Mpi_portals
