(** Intel NX message passing over Portals.

    §2 of the paper: "Since Portals pre-dated the development of the MPI
    standard, multiple application-level message passing APIs were
    implemented on top of Portals, such as Intel's NX interface and
    nCUBE's Vertex interface." This module is that layering for NX: the
    classic typed send/receive calls of the Paragon's OS, running over
    the same Portals matching engine as the MPI device.

    NX semantics: messages carry a non-negative integer {e type};
    receives select by type, where the selector -1 accepts any type.
    After a receive completes, [infocount]/[infonode]/[infotype] report
    the last message's size, source node and type. Calls are
    fiber-blocking unless prefixed [i]. *)

type t
type msgid

val create :
  Simnet.Transport.t -> ranks:Simnet.Proc_id.t array -> rank:int -> unit -> t

val finalize : t -> unit

val mynode : t -> int
val numnodes : t -> int

val any_type : int
(** -1: the wildcard type selector. *)

val csend : t -> typ:int -> node:int -> bytes -> unit
(** Blocking typed send ([csend] of NX). *)

val crecv : t -> typesel:int -> bytes -> int
(** Blocking receive into the buffer; returns the received length and
    updates the info registers. *)

val isend : t -> typ:int -> node:int -> bytes -> msgid
val irecv : t -> typesel:int -> bytes -> msgid

val msgdone : t -> msgid -> bool
(** Non-blocking completion test ([msgdone]). *)

val msgwait : t -> msgid -> unit
(** Block until the operation completes ([msgwait]); receives update the
    info registers. *)

val infocount : t -> int
(** Byte count of the last completed receive (-1 before any). *)

val infonode : t -> int
(** Source node of the last completed receive (-1 before any). *)

val infotype : t -> int
(** Type of the last completed receive (-1 before any). *)
