(* NX rides the Portals matching engine through the same device layer as
   MPI: an NX type is a tag, the -1 selector is the tag wildcard, and NX
   receives never restrict the source (crecv matches any sender). The
   info registers are NX's way of reporting status. *)

type msgid = Send of Mpi_portals.request | Recv of Mpi_portals.request

type t = {
  ep : Mpi_portals.t;
  mutable info_count : int;
  mutable info_node : int;
  mutable info_type : int;
}

let any_type = -1

let create tp ~ranks ~rank () =
  { ep = Mpi_portals.create tp ~ranks ~rank (); info_count = -1; info_node = -1;
    info_type = -1 }

let finalize t = Mpi_portals.finalize t.ep
let mynode t = Mpi_portals.rank t.ep
let numnodes t = Mpi_portals.size t.ep

let check_type typ =
  if typ < 0 then invalid_arg "Nx: message types must be non-negative"

let isend t ~typ ~node payload =
  check_type typ;
  Send (Mpi_portals.isend t.ep ~dst:node ~tag:typ payload)

let irecv t ~typesel buffer =
  if typesel <> any_type then check_type typesel;
  let tag = if typesel = any_type then Envelope.any_tag else typesel in
  Recv (Mpi_portals.irecv t.ep ~source:Envelope.any_source ~tag buffer)

let record_info t (st : Mpi_portals.status) =
  t.info_count <- st.Mpi_portals.length;
  t.info_node <- st.Mpi_portals.source;
  t.info_type <- st.Mpi_portals.tag

let msgwait t id =
  match id with
  | Send req -> ignore (Mpi_portals.wait t.ep req)
  | Recv req ->
    let st = Mpi_portals.wait t.ep req in
    record_info t st

let msgdone t id =
  match id with
  | Send req -> Mpi_portals.test t.ep req <> None
  | Recv req -> (
    match Mpi_portals.test t.ep req with
    | None -> false
    | Some st ->
      record_info t st;
      true)

let csend t ~typ ~node payload = msgwait t (isend t ~typ ~node payload)

let crecv t ~typesel buffer =
  msgwait t (irecv t ~typesel buffer);
  t.info_count

let infocount t = t.info_count
let infonode t = t.info_node
let infotype t = t.info_type
