(** Lightweight event trace for debugging simulations.

    Disabled traces cost one branch per event. Enabled traces keep the most
    recent [capacity] entries in a ring buffer and can mirror them to a
    [Logs] source. *)

type t

val create : ?capacity:int -> ?log:bool -> Scheduler.t -> t
(** [create sched] is a disabled trace with the given ring [capacity]
    (default 4096). With [log:true], events are also emitted at debug level
    through the ["sim"] log source. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> ?subsys:string -> string -> unit
(** Record an event at the current simulated time. *)

val emitf : t -> ?subsys:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!emit} with formatting; the format arguments are only evaluated
    when the trace is enabled. *)

val events : t -> (Time_ns.t * string * string) list
(** Retained events, oldest first: (time, subsystem, message). *)

val dump : Format.formatter -> t -> unit
