type t = {
  sched : Scheduler.t;
  cpu_name : string;
  lock : Sync.Semaphore.t;
  mutable due : Time_ns.t option; (* completion time of in-flight compute *)
  mutable stolen : Time_ns.t;
  mutable computed : Time_ns.t;
}

let create ?(name = "cpu") sched =
  {
    sched;
    cpu_name = name;
    lock = Sync.Semaphore.create ~name:(name ^ ".lock") sched 1;
    due = None;
    stolen = Time_ns.zero;
    computed = Time_ns.zero;
  }

let name t = t.cpu_name

(* [steal] pushes [t.due] forward while we sleep, so we loop until the
   deadline stops moving. *)
let compute t d =
  if Time_ns.compare d Time_ns.zero < 0 then invalid_arg "Cpu.compute: negative";
  Sync.Semaphore.acquire t.lock;
  t.computed <- Time_ns.add t.computed d;
  t.due <- Some (Time_ns.add (Scheduler.now t.sched) d);
  let rec wait_until_done () =
    match t.due with
    | None -> assert false
    | Some target ->
      if Time_ns.compare (Scheduler.now t.sched) target < 0 then begin
        Scheduler.delay_until t.sched target;
        wait_until_done ()
      end
  in
  wait_until_done ();
  t.due <- None;
  Sync.Semaphore.release t.lock

let steal t d =
  if Time_ns.compare d Time_ns.zero < 0 then invalid_arg "Cpu.steal: negative";
  t.stolen <- Time_ns.add t.stolen d;
  match t.due with
  | None -> ()
  | Some target -> t.due <- Some (Time_ns.add target d)

let stolen_total t = t.stolen
let compute_total t = t.computed
let busy t = t.due <> None
