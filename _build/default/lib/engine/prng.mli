(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be reproducible: a run with the same seed produces
    the same event interleaving and the same measurements. We therefore use
    an explicit-state splitmix64 generator rather than the global [Random]
    state, so independent components can carry independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Useful to give each simulated node its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by [t]. *)
