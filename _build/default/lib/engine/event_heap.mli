(** Priority queue of timestamped simulation events.

    A binary min-heap keyed by [(time, sequence)]. The sequence number is
    assigned at insertion, so events scheduled for the same instant fire in
    insertion order — this FIFO tie-break is what makes simulations
    deterministic and is relied upon throughout the engine. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:Time_ns.t -> 'a -> unit
(** [add t ~time v] schedules [v] at [time]. O(log n). *)

val pop : 'a t -> (Time_ns.t * 'a) option
(** [pop t] removes and returns the earliest event, or [None] if empty.
    O(log n). *)

val peek_time : 'a t -> Time_ns.t option
(** Timestamp of the earliest event without removing it. O(1). *)

val clear : 'a t -> unit

val drain : 'a t -> (Time_ns.t -> 'a -> unit) -> unit
(** [drain t f] pops every event in order, applying [f]. Events added by
    [f] itself are drained too. *)
