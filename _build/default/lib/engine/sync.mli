(** Blocking primitives for fibers, built on {!Scheduler.suspend}.

    Each primitive wakes waiters at the simulated time of the signalling
    operation, in FIFO order. *)

module Ivar : sig
  (** Write-once cell. Reading blocks until the value is written. *)

  type 'a t

  val create : Scheduler.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
  val read : 'a t -> 'a
  (** Fiber-only: blocks until filled. *)
end

module Waitq : sig
  (** Condition-variable-like wait queue. [wait] blocks; [signal] wakes the
      oldest waiter; [broadcast] wakes all current waiters. There is no
      separate mutex — the simulation is cooperatively scheduled, so state
      checks and [wait] cannot be interleaved by other fibers. As with any
      condition variable, callers must re-check their predicate on wakeup. *)

  type t

  val create : ?name:string -> Scheduler.t -> t
  val wait : t -> unit
  val signal : t -> unit
  val broadcast : t -> unit
  val waiters : t -> int
end

module Mailbox : sig
  (** Unbounded FIFO queue; [recv] blocks when empty. *)

  type 'a t

  val create : ?name:string -> Scheduler.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Fiber-only: blocks until a message is available. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Semaphore : sig
  type t

  val create : ?name:string -> Scheduler.t -> int -> t
  (** [create sched n] has [n] initial units; [n >= 0]. *)

  val acquire : t -> unit
  (** Fiber-only: blocks while no unit is available. FIFO fairness. *)

  val release : t -> unit
  val available : t -> int
end

module Barrier : sig
  (** Reusable fiber barrier for [n] parties. *)

  type t

  val create : ?name:string -> Scheduler.t -> int -> t
  val await : t -> unit
  (** Fiber-only: blocks until [n] fibers have called [await] in the
      current generation, then releases them all. *)
end
