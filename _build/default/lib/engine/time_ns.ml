type t = int

let zero = 0
let ns n = n
let us x = int_of_float (Float.round (x *. 1e3))
let ms x = int_of_float (Float.round (x *. 1e6))
let s x = int_of_float (Float.round (x *. 1e9))
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9
let add = ( + )
let sub = ( - )
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare
let equal = Int.equal

let of_rate ~bytes_per_s n =
  assert (bytes_per_s > 0.);
  int_of_float (Float.round (float_of_int n *. 1e9 /. bytes_per_s))

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_s t)

let to_string t = Format.asprintf "%a" pp t
