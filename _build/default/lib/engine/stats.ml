module Counter = struct
  type t = { name : string; mutable value : int }

  let create ?(name = "") () = { name; value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
  let name t = t.name
end

module Summary = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : float;
    mutable sum_sq : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(name = "") () =
    { name; count = 0; total = 0.; sum_sq = 0.; min = infinity; max = neg_infinity }

  let observe t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.total /. float_of_int t.count
  let min t = if t.count = 0 then 0. else t.min
  let max t = if t.count = 0 then 0. else t.max

  let stddev t =
    if t.count < 2 then 0.
    else
      let n = float_of_int t.count in
      let m = t.total /. n in
      let var = (t.sum_sq /. n) -. (m *. m) in
      if var < 0. then 0. else sqrt var

  let total t = t.total

  let reset t =
    t.count <- 0;
    t.total <- 0.;
    t.sum_sq <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity

  let pp ppf t =
    Format.fprintf ppf "%s: n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f" t.name
      t.count (mean t) (min t) (max t) (stddev t)
end

module Series = struct
  type t = { name : string; mutable rev_points : (float * float) list; mutable len : int }

  let create ?(name = "") () = { name; rev_points = []; len = 0 }

  let push t ~x ~y =
    t.rev_points <- (x, y) :: t.rev_points;
    t.len <- t.len + 1

  let points t = List.rev t.rev_points
  let length t = t.len
  let name t = t.name

  let pp_table ?(x_label = "x") ?(y_label = "y") ppf t =
    Format.fprintf ppf "%-16s %-16s@." x_label y_label;
    let row (x, y) = Format.fprintf ppf "%-16.4f %-16.4f@." x y in
    List.iter row (points t)
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;
    counts : int array; (* length = Array.length bounds + 1, last = overflow *)
    mutable total : int;
  }

  let create ?(name = "") ~buckets () =
    let bounds = Array.copy buckets in
    Array.sort compare bounds;
    { name; bounds; counts = Array.make (Array.length bounds + 1) 0; total = 0 }

  let bucket_index t x =
    let n = Array.length t.bounds in
    let rec go i = if i >= n then n else if x <= t.bounds.(i) then i else go (i + 1) in
    go 0

  let observe t x =
    let i = bucket_index t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t =
    let n = Array.length t.bounds in
    let rec go i acc =
      if i < 0 then acc
      else
        let bound = if i = n then None else Some t.bounds.(i) in
        go (i - 1) ((bound, t.counts.(i)) :: acc)
    in
    go n []

  let count t = t.total

  let quantile t q =
    if t.total = 0 then 0.
    else begin
      let target = q *. float_of_int t.total in
      let n = Array.length t.bounds in
      let rec go i seen =
        if i > n then t.bounds.(n - 1)
        else
          let seen' = seen + t.counts.(i) in
          if float_of_int seen' >= target then
            if i = n then (if n = 0 then 0. else t.bounds.(n - 1))
            else begin
              let lo = if i = 0 then 0. else t.bounds.(i - 1) in
              let hi = t.bounds.(i) in
              if t.counts.(i) = 0 then hi
              else
                let frac = (target -. float_of_int seen) /. float_of_int t.counts.(i) in
                lo +. (frac *. (hi -. lo))
            end
          else go (i + 1) seen'
      in
      go 0 0
    end

  let pp ppf t =
    Format.fprintf ppf "%s (n=%d):@." t.name t.total;
    let row (bound, c) =
      match bound with
      | Some b -> Format.fprintf ppf "  <= %-12.3f %d@." b c
      | None -> Format.fprintf ppf "  >  %-12.3f %d@." t.bounds.(Array.length t.bounds - 1) c
    in
    List.iter row (counts t)
end
