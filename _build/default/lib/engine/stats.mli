(** Measurement collection for simulation runs.

    Three collector kinds cover everything the benches report:
    {ul
    {- [Counter]: monotonically increasing integer (messages sent, drops).}
    {- [Summary]: running mean/min/max/stddev of float samples (latencies).}
    {- [Series]: (x, y) points accumulated in order (a figure's curve).}} *)

module Counter : sig
  type t

  val create : ?name:string -> unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Summary : sig
  type t

  val create : ?name:string -> unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of observed samples; 0 if none. *)

  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  (** Population standard deviation; 0 for fewer than two samples. *)

  val total : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

module Series : sig
  type t

  val create : ?name:string -> unit -> t
  val push : t -> x:float -> y:float -> unit
  val points : t -> (float * float) list
  (** Points in insertion order. *)

  val length : t -> int
  val name : t -> string
  val pp_table : ?x_label:string -> ?y_label:string -> Format.formatter -> t -> unit
  (** Render as an aligned two-column table, one row per point. *)
end

module Histogram : sig
  type t

  val create : ?name:string -> buckets:float array -> unit -> t
  (** [create ~buckets] uses [buckets] as ascending upper bounds; samples
      above the last bound land in an overflow bucket. *)

  val observe : t -> float -> unit
  val counts : t -> (float option * int) list
  (** Bucket upper bound ([None] = overflow) and count, ascending. *)

  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-quantile (0 <= q <= 1) by linear
      interpolation within buckets. *)

  val pp : Format.formatter -> t -> unit
end
