(** Simulated time, in integer nanoseconds.

    All simulation components share this representation. Using an integer
    keeps event ordering exact and runs deterministic across platforms;
    OCaml's 63-bit native integers give ~292 years of range, far beyond any
    simulated experiment. *)

type t = int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : float -> t
(** [us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val ms : float -> t
(** [ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)

val s : float -> t
(** [s x] is [x] seconds, rounded to the nearest nanosecond. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_s : t -> float
(** [to_s t] is [t] expressed in seconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val of_rate : bytes_per_s:float -> int -> t
(** [of_rate ~bytes_per_s n] is the time needed to move [n] bytes at
    [bytes_per_s] bytes per second. [bytes_per_s] must be positive. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an auto-selected unit (ns, us, ms or s). *)

val to_string : t -> string
