lib/engine/time_ns.ml: Float Format Int Stdlib
