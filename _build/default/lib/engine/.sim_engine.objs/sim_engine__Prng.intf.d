lib/engine/prng.mli:
