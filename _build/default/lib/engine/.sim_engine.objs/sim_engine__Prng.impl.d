lib/engine/prng.ml: Array Int64
