lib/engine/cpu.mli: Scheduler Time_ns
