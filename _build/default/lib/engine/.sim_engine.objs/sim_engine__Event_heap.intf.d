lib/engine/event_heap.mli: Time_ns
