lib/engine/trace.ml: Array Format List Logs Scheduler Time_ns
