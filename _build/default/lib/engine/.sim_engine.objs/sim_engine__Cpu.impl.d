lib/engine/cpu.ml: Scheduler Sync Time_ns
