lib/engine/scheduler.ml: Effect Event_heap Format Hashtbl List Prng Time_ns
