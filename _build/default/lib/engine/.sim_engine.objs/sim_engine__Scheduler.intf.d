lib/engine/scheduler.mli: Prng Time_ns
