lib/engine/sim_engine.ml: Cpu Event_heap Prng Scheduler Stats Sync Time_ns Trace
