lib/engine/sync.mli: Scheduler
