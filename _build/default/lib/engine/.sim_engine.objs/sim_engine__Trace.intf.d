lib/engine/trace.mli: Format Scheduler Time_ns
