lib/engine/stats.ml: Array Format List
