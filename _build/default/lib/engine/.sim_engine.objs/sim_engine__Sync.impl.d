lib/engine/sync.ml: Queue Scheduler
