let src = Logs.Src.create "sim" ~doc:"Simulation event trace"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  sched : Scheduler.t;
  capacity : int;
  ring : (Time_ns.t * string * string) option array;
  mutable next : int;
  mutable count : int;
  mutable is_enabled : bool;
  log : bool;
}

let create ?(capacity = 4096) ?(log = false) sched =
  {
    sched;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    is_enabled = false;
    log;
  }

let enable t = t.is_enabled <- true
let disable t = t.is_enabled <- false
let enabled t = t.is_enabled

let emit t ?(subsys = "") msg =
  if t.is_enabled then begin
    let entry = (Scheduler.now t.sched, subsys, msg) in
    t.ring.(t.next) <- Some entry;
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1;
    if t.log then
      Log.debug (fun m ->
          m "[%a] %s: %s" Time_ns.pp (Scheduler.now t.sched) subsys msg)
  end

let emitf t ?subsys fmt =
  if t.is_enabled then
    Format.kasprintf (fun msg -> emit t ?subsys msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t =
  let out = ref [] in
  for i = 0 to t.count - 1 do
    let idx = (t.next - t.count + i + (2 * t.capacity)) mod t.capacity in
    match t.ring.(idx) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let dump ppf t =
  let line (time, subsys, msg) =
    Format.fprintf ppf "[%a] %s: %s@." Time_ns.pp time subsys msg
  in
  List.iter line (events t)
