(** Design-choice ablations called out in DESIGN.md.

    {b Eager threshold} (§5.2's progress discussion): below the MPI
    device's eager threshold, a pre-posted receive completes entirely by
    application bypass; above it, the receiver pulls the payload from the
    library, so a work interval leaves the transfer pending. The sweep
    crosses the threshold and the remaining wait should jump.

    {b Interrupt coalescing} (§5.3 concedes the measured implementation
    is interrupt-driven): per-packet interrupts inflate the work interval
    on the receiving host; coalescing recovers most of it. *)

type threshold_row = {
  message_size : int;
  eager : bool;  (** Below/at the device threshold? *)
  wait_ms : float;  (** Remaining wait after a 20 ms work interval. *)
}

val run_threshold : ?sizes:int list -> unit -> threshold_row list

val pp_threshold : Format.formatter -> threshold_row list -> unit

type interrupt_row = {
  per_packet_interrupt : bool;
  work_elapsed_ms : float;
      (** Wall time of a nominal 20 ms work interval while 10 x 50 KB
          messages arrive. *)
  host_stolen_ms : float;
}

val run_interrupts : unit -> interrupt_row list

val pp_interrupts : Format.formatter -> interrupt_row list -> unit
