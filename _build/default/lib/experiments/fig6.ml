open Sim_engine

type series = { label : string; points : (float * float) list }

type t = { message_size : int; batch : int; series : series list }

let work_intervals_ms = [ 0.; 2.; 5.; 10.; 15.; 20.; 25.; 30.; 40.; 50. ]

let sweep ~label ~message_size ~batch ~iterations ~work_ms ~backend ~transport
    ~tests_during_work =
  let point ms =
    let result =
      Fig5.run
        {
          Fig5.backend;
          transport;
          message_size;
          batch;
          iterations;
          work = Time_ns.ms ms;
          tests_during_work;
        }
    in
    (ms, result.Fig5.mean_wait /. 1000.)
  in
  { label; points = List.map point work_ms }

let run ?(message_size = 50_000) ?(batch = 10) ?(iterations = 3)
    ?(work_ms = work_intervals_ms) () =
  let sweep ~label ~backend ~transport ~tests_during_work =
    sweep ~label ~message_size ~batch ~iterations ~work_ms ~backend ~transport
      ~tests_during_work
  in
  {
    message_size;
    batch;
    series =
      [
        sweep ~label:"MPICH/GM" ~backend:`Gm ~transport:Runtime.Offload
          ~tests_during_work:0;
        sweep ~label:"MPICH/Portals3.0" ~backend:`Portals
          ~transport:Runtime.Rtscts ~tests_during_work:0;
        sweep ~label:"MPICH/GM+3tests" ~backend:`Gm ~transport:Runtime.Offload
          ~tests_during_work:3;
        sweep ~label:"Portals3.0-MCP" ~backend:`Portals
          ~transport:Runtime.Offload ~tests_during_work:0;
      ];
  }

let pp ppf t =
  Format.fprintf ppf
    "Figure 6: wait duration vs work interval (%d x %d-byte messages)@."
    t.batch t.message_size;
  Format.fprintf ppf "%-14s" "work(ms)";
  List.iter (fun s -> Format.fprintf ppf "%-20s" s.label) t.series;
  Format.fprintf ppf "@.";
  match t.series with
  | [] -> ()
  | first :: _ ->
    List.iteri
      (fun i (x, _) ->
        Format.fprintf ppf "%-14.1f" x;
        List.iter
          (fun s ->
            let _, y = List.nth s.points i in
            Format.fprintf ppf "%-20.3f" y)
          t.series;
        Format.fprintf ppf "@.")
      first.points
