(** Figures 3–4: Portal address translation — the match-list walk — and
    its cost as the list grows.

    The target attaches [k] non-matching entries ahead of one accepting
    entry, then receives a put. Reported per depth: entries examined
    (must be exactly k+1) and the host CPU time the walk charged, for the
    NIC placement (per-entry cost on the LANai) and the kernel placement
    (per-entry cost on the host, §3's address-validation discussion). *)

type row = {
  depth : int;  (** Entries ahead of the match. *)
  entries_walked : int;
  nic_walk_us : float;  (** Walk cost at NIC per-entry rates. *)
  host_walk_us : float;  (** Walk cost at host per-entry rates. *)
  host_stolen_us : float;
      (** Host CPU actually stolen on the kernel placement (includes the
          fixed interrupt + copy costs). *)
}

val default_depths : int list

val run : ?depths:int list -> unit -> row list

val pp : Format.formatter -> row list -> unit
