(** Figures 1 and 2: the put and get data movement protocols, regenerated
    as event timelines from a live two-node exchange.

    Figure 1 (put): the initiator sends a put request carrying the data;
    the target deposits it and optionally acknowledges. Figure 2 (get):
    the initiator sends a get request; the target replies with the data.
    The timelines list every completion event both processes observe, in
    simulated-time order — including which side each event belongs to,
    making the one-sided completion structure visible. *)

type entry = {
  time_us : float;
  side : [ `Initiator | `Target ];
  kind : string;  (** SENT/PUT/ACK/GET/REPLY *)
  mlength : int;
}

type timeline = { figure : int; operation : string; entries : entry list }

val run_put : ?message_size:int -> ?transport:Runtime.transport_kind -> unit -> timeline
(** Figure 1: a put with acknowledgment (default 4 KB, MCP placement). *)

val run_get : ?message_size:int -> ?transport:Runtime.transport_kind -> unit -> timeline
(** Figure 2: a get and its reply. *)

val pp : Format.formatter -> timeline -> unit
