lib/experiments/fig6.ml: Fig5 Format List Runtime Sim_engine Time_ns
