lib/experiments/drops.mli: Format
