lib/experiments/fig6.mli: Format
