lib/experiments/scaling.mli: Format
