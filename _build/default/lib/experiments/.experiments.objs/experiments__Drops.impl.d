lib/experiments/drops.ml: Array Bytes Format List Portals Runtime Sim_engine Simnet Time_ns
