lib/experiments/ablation.ml: Array Bytes Cpu Fig5 Format List Mpi Rtscts Runtime Scheduler Sim_engine Simnet Time_ns
