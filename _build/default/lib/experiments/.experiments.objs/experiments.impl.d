lib/experiments/experiments.ml: Ablation Bandwidth Drops Fig5 Fig6 Latency Protocols Scaling Tables Translation
