lib/experiments/scaling.ml: Array Bytes Collectives Format List Mpi Portals Runtime Scheduler Sim_engine Time_ns
