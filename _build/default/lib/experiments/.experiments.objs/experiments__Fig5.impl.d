lib/experiments/fig5.ml: Array Bytes Cpu List Mpi Runtime Scheduler Sim_engine Stats Time_ns
