lib/experiments/latency.mli: Format Runtime Simnet
