lib/experiments/bandwidth.mli: Format Runtime
