lib/experiments/protocols.ml: Array Bytes Format List Portals Runtime Sim_engine Time_ns
