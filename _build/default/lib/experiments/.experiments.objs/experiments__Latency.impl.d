lib/experiments/latency.ml: Array Bytes Format List Portals Runtime Scheduler Sim_engine Simnet Stats Time_ns
