lib/experiments/bandwidth.ml: Array Bytes Format List Portals Runtime Scheduler Sim_engine Time_ns
