lib/experiments/protocols.mli: Format Runtime
