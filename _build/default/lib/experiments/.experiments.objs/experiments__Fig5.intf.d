lib/experiments/fig5.mli: Runtime Sim_engine
