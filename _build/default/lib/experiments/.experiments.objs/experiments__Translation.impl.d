lib/experiments/translation.ml: Array Bytes Cpu Format List Portals Runtime Sim_engine Simnet Time_ns
