lib/experiments/tables.ml: Bytes Format List Portals Simnet
