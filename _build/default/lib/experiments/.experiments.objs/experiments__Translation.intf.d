lib/experiments/translation.mli: Format
