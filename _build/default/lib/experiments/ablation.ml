open Sim_engine

type threshold_row = { message_size : int; eager : bool; wait_ms : float }

let run_threshold ?(sizes = [ 16_384; 32_768; 65_536; 98_304; 131_072 ]) () =
  let threshold = Mpi.Mpi_portals.default_config.Mpi.Mpi_portals.eager_threshold in
  List.map
    (fun message_size ->
      let result =
        Fig5.run
          {
            Fig5.default_params with
            Fig5.backend = `Portals;
            transport = Runtime.Offload;
            message_size;
            batch = 4;
            iterations = 3;
            work = Time_ns.ms 20.0;
          }
      in
      {
        message_size;
        eager = message_size <= threshold;
        wait_ms = result.Fig5.mean_wait /. 1000.;
      })
    sizes

let pp_threshold ppf rows =
  Format.fprintf ppf
    "Eager-threshold ablation: remaining wait after 20ms work vs size:@.";
  Format.fprintf ppf "%-12s %-10s %-12s@." "size(B)" "protocol" "wait(ms)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12d %-10s %-12.3f@." r.message_size
        (if r.eager then "eager" else "rendezvous")
        r.wait_ms)
    rows

type interrupt_row = {
  per_packet_interrupt : bool;
  work_elapsed_ms : float;
  host_stolen_ms : float;
}

module MP = Mpi.Mpi_portals

let run_interrupt_case per_packet =
  let sched = Scheduler.create () in
  let fabric =
    Simnet.Fabric.create sched ~profile:Simnet.Profile.myrinet_kernel ~nodes:2
  in
  let rtscts =
    Rtscts.create
      ~config:{ Rtscts.eager_threshold = 4096; per_packet_interrupt = per_packet }
      fabric
  in
  let tp = Rtscts.transport rtscts in
  let ranks = Array.init 2 (fun nid -> Simnet.Proc_id.make ~nid ~pid:0) in
  let eps = Array.init 2 (fun rank -> MP.create tp ~ranks ~rank ()) in
  let work_elapsed = ref 0. in
  let batch = 10 and size = 50_000 in
  Scheduler.spawn sched (fun () ->
      let sends =
        List.init batch (fun i -> MP.isend eps.(0) ~dst:1 ~tag:i (Bytes.create size))
      in
      List.iter (fun r -> ignore (MP.wait eps.(0) r)) sends);
  Scheduler.spawn sched (fun () ->
      let recvs =
        List.init batch (fun i ->
            MP.irecv eps.(1) ~source:0 ~tag:i (Bytes.create size))
      in
      let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
      let started = Scheduler.now sched in
      Cpu.compute cpu (Time_ns.ms 20.0);
      work_elapsed := Time_ns.to_ms (Time_ns.sub (Scheduler.now sched) started);
      List.iter (fun r -> ignore (MP.wait eps.(1) r)) recvs);
  Scheduler.run sched;
  let cpu = Simnet.Node.host_cpu (Simnet.Fabric.node fabric 1) in
  {
    per_packet_interrupt = per_packet;
    work_elapsed_ms = !work_elapsed;
    host_stolen_ms = Time_ns.to_ms (Cpu.stolen_total cpu);
  }

let run_interrupts () = [ run_interrupt_case true; run_interrupt_case false ]

let pp_interrupts ppf rows =
  Format.fprintf ppf
    "Interrupt ablation: 20ms nominal work while 10x50KB arrive (kernel path):@.";
  Format.fprintf ppf "%-22s %-18s %-18s@." "per-packet-interrupt"
    "work-elapsed(ms)" "host-stolen(ms)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22b %-18.3f %-18.3f@." r.per_packet_interrupt
        r.work_elapsed_ms r.host_stolen_ms)
    rows
