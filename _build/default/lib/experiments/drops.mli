(** §4.8's drop accounting, exercised end to end: every documented reason
    for discarding an incoming message is triggered once against a live
    interface and read back from the per-reason counters. *)

type row = { reason : string; count : int }

val run : unit -> row list
(** One row per {!Portals.Ni.drop_reason}, in declaration order; each
    count should be exactly 1 (the harness triggers each reason once). *)

val pp : Format.formatter -> row list -> unit
