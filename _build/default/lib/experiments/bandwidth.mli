(** Streaming bandwidth vs message size (§3's packet-pipelining claim:
    "all of these memory copies are overlapping, so we are able to
    achieve reasonable bandwidth due to packet pipelining").

    A one-way stream of [count] back-to-back puts per size; bandwidth is
    payload bytes over the span from first injection to last delivery.
    The kernel (RTS/CTS) path must stay close to min(copy, wire)
    bandwidth at large sizes — not collapse to the serial sum — while the
    NIC-offload path tracks the wire. *)

type row = { size : int; mb_per_s : float }

type t = { placement : string; rows : row list }

val default_sizes : int list

val run_one :
  ?sizes:int list -> ?count:int -> Runtime.transport_kind -> t
(** Default 16 messages per size, sizes 1 KB .. 1 MB. *)

val run : ?sizes:int list -> ?count:int -> unit -> t list

val pp : Format.formatter -> t list -> unit
