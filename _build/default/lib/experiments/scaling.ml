open Sim_engine

type memory_row = {
  job_size : int;
  portals_reserved : int;
  portals_highwater : int;
  via_like_bytes : int;
}

module MP = Mpi.Mpi_portals

let run_memory ?(job_sizes = [ 4; 8; 16; 32; 64 ]) ?(credits = 8)
    ?(eager = 16_384) () =
  let measure n =
    let world = Runtime.create_world ~nodes:n () in
    let config = MP.default_config in
    let endpoints =
      Array.init n (fun rank ->
          MP.create world.Runtime.transport ~ranks:world.Runtime.ranks ~rank
            ~config ())
    in
    Runtime.spawn_ranks world (fun ~rank ->
        let ep = endpoints.(rank) in
        if rank <> 0 then
          for i = 0 to 3 do
            ignore (MP.wait ep (MP.isend ep ~dst:0 ~tag:((rank * 10) + i) (Bytes.create 1_024)))
          done
        else begin
          (* Let everything arrive unexpected, then claim it. *)
          Scheduler.delay world.Runtime.sched (Time_ns.ms 50.0);
          for src = 1 to n - 1 do
            for i = 0 to 3 do
              ignore
                (MP.wait ep
                   (MP.irecv ep ~source:src ~tag:((src * 10) + i)
                      (Bytes.create 1_024)))
            done
          done
        end);
    Runtime.run world;
    {
      job_size = n;
      portals_reserved = config.MP.slab_size * config.MP.slab_count;
      portals_highwater = MP.unexpected_bytes_highwater endpoints.(0);
      via_like_bytes = (n - 1) * credits * eager;
    }
  in
  List.map measure job_sizes

let pp_memory ppf rows =
  Format.fprintf ppf
    "Receive-buffer memory vs job size (section 4.1):@.";
  Format.fprintf ppf "%-10s %-20s %-20s %-20s@." "job" "portals-reserved"
    "portals-highwater" "via-like-per-conn";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %-20d %-20d %-20d@." r.job_size
        r.portals_reserved r.portals_highwater r.via_like_bytes)
    rows

type coll_row = { nodes : int; barrier_us : float; allreduce_us : float }

let run_collectives ?(node_counts = [ 2; 4; 8; 16; 32; 64; 128; 256 ]) () =
  let measure n =
    let world = Runtime.create_world ~nodes:n () in
    let colls =
      Array.mapi
        (fun rank pid ->
          let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
          Collectives.create ni ~ranks:world.Runtime.ranks ~rank ())
        world.Runtime.ranks
    in
    let barrier_done = ref Time_ns.zero in
    let allreduce_done = ref Time_ns.zero in
    let barrier_start = ref Time_ns.zero in
    let allreduce_start = ref Time_ns.zero in
    Array.iteri
      (fun rank coll ->
        Scheduler.spawn world.Runtime.sched (fun () ->
            (* Warmup to hide first-touch effects, then measured rounds. *)
            Collectives.barrier coll;
            if rank = 0 then barrier_start := Scheduler.now world.Runtime.sched;
            Collectives.barrier coll;
            let now = Scheduler.now world.Runtime.sched in
            if Time_ns.compare now !barrier_done > 0 then barrier_done := now;
            Collectives.barrier coll;
            if rank = 0 then allreduce_start := Scheduler.now world.Runtime.sched;
            ignore (Collectives.allreduce_float_sum coll (Array.make 8 1.0));
            let now = Scheduler.now world.Runtime.sched in
            if Time_ns.compare now !allreduce_done > 0 then allreduce_done := now))
      colls;
    Runtime.run world;
    {
      nodes = n;
      barrier_us = Time_ns.to_us (Time_ns.sub !barrier_done !barrier_start);
      allreduce_us = Time_ns.to_us (Time_ns.sub !allreduce_done !allreduce_start);
    }
  in
  List.map measure node_counts

let pp_collectives ppf rows =
  Format.fprintf ppf "Collective completion time vs nodes:@.";
  Format.fprintf ppf "%-10s %-16s %-16s@." "nodes" "barrier(us)" "allreduce(us)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10d %-16.2f %-16.2f@." r.nodes r.barrier_us
        r.allreduce_us)
    rows
