(** Zero-length ping-pong latency (§3: the in-progress Portals 3.0 MCP
    "is achieving less than 20 usec for a zero-length ping-pong latency
    test").

    Raw Portals put/put between two nodes; the reply is triggered by the
    PUT event, not by polling. Reported per placement: the NIC-offload
    MCP, the interrupt-driven kernel module (RTS/CTS), and the TCP
    reference implementation. *)

type row = {
  placement : string;
  rtt_us : float;  (** Mean round trip, microseconds. *)
  one_way_us : float;
}

val run_one :
  ?profile:Simnet.Profile.t ->
  ?label:string ->
  ?message_size:int ->
  ?iterations:int ->
  Runtime.transport_kind ->
  row
(** Measure one placement (default zero-length, 50 iterations after one
    warmup round trip); [profile] overrides the transport's default
    hardware profile, [label] the row name. *)

val run : ?message_size:int -> ?iterations:int -> unit -> row list
(** The three Myrinet placements plus the Puma/ASCI-Red heritage
    platform (§2) and the TCP reference implementation (§3), fastest
    first. *)

val pp : Format.formatter -> row list -> unit
