(** One-sided operations on Portals: a shmem-style layer (§4.4 cites
    shmem as the canonical one-sided model Portals addressing supports,
    and §2 notes the Puma MPI carried preliminary MPI-2 one-sided
    functions).

    Every process exposes {e symmetric regions}: allocation [k] on one
    rank names the same region on every rank (all ranks must allocate in
    the same order, as in shmem's symmetric heap). Remote [put]/[get]
    address a region by id and offset — the (process, buffer id, offset)
    triple of §4.4 — with no involvement of the target application:
    delivery, acknowledgment and replies are all Portals processing.

    Blocking calls are fiber-only. *)

type t

val create :
  Portals.Ni.t ->
  ranks:Simnet.Proc_id.t array ->
  rank:int ->
  ?portal_index:int ->
  unit ->
  t
(** One endpoint per rank over an existing interface; [portal_index]
    defaults to 7. *)

val rank : t -> int
val size : t -> int

type sym
(** A symmetric region id. *)

val alloc : t -> int -> sym
(** Expose a fresh zero-initialised region of the given size. Must be
    called in the same order with the same size on every rank. *)

val region_bytes : t -> sym -> bytes
(** The local backing store of a region (reading it sees remote puts;
    writing it feeds remote gets). *)

val put : t -> sym -> pe:int -> offset:int -> bytes -> unit
(** Asynchronous remote write into [pe]'s region at [offset]. Completion
    is tracked by the Portals acknowledgment (Table 2); {!quiet} drains
    it. Raises [Invalid_argument] if the write would overrun the region
    (the target would reject it, §4.8). *)

val get : t -> sym -> pe:int -> offset:int -> len:int -> bytes
(** Blocking remote read of [len] bytes from [pe]'s region at [offset]
    (the reply routes back through the bound descriptor, Table 4). *)

val quiet : t -> unit
(** Block until every outstanding {!put} has been acknowledged by its
    target — shmem_quiet. *)

val outstanding_puts : t -> int

val wait_until : t -> sym -> offset:int -> value:char -> unit
(** Block until the local region's byte at [offset] equals [value] — the
    shmem point-to-point synchronisation idiom. Wakes on each incoming
    one-sided operation (a PUT event on the region, §4.4). *)

val barrier_value : char
(** Conventional flag value (\x01) for {!wait_until}-based signalling. *)
