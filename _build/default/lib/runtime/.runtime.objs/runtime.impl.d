lib/runtime/runtime.ml: Control World
