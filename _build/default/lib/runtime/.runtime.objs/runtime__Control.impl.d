lib/runtime/control.ml: Array Bytes Collectives Int64 Portals Printf Scheduler Sim_engine Simnet Time_ns World
