lib/runtime/world.ml: Array Mpi Printf Rtscts Scheduler Sim_engine Simnet
