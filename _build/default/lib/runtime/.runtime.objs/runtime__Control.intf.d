lib/runtime/control.mli: Sim_engine World
