lib/runtime/world.mli: Mpi Sim_engine Simnet
