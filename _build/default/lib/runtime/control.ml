open Sim_engine
module P = Portals

type report = { job_id : int; statuses : int array; elapsed : Time_ns.t }

let control_portal = 2
let launcher_pid = 63
let agent_pid_base = 32

(* Message naming on the control portal: kind, job, rank. *)
let bits ~kind ~job ~rank =
  let open P.Match_bits in
  logor
    (field ~shift:60 ~width:2 kind)
    (logor (field ~shift:32 ~width:20 job) (field ~shift:0 ~width:16 rank))

let kind_start = 0
let kind_exit = 1

(* A tiny pooled endpoint: catch-all slab + claim-by-bits, the same
   expected-message discipline the collectives use. *)
type endpoint = { ni : P.Ni.t; pool : Collectives.Pool.t }

let make_endpoint world pid =
  let ni = P.Ni.create world.World.transport ~id:pid () in
  let pool =
    Collectives.Pool.create ni ~portal_index:control_portal ~slab_size:16_384
      ~slab_count:2 ()
  in
  { ni; pool }

let encode_start ~job ~size =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int job);
  Bytes.set_int64_le b 8 (Int64.of_int size);
  b

let encode_exit status =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int status);
  b

let run_job ?(job_id = 1) world main =
  let n = World.job_size world in
  let launcher_id =
    Simnet.Proc_id.make ~nid:0 ~pid:launcher_pid
  in
  let launcher = make_endpoint world launcher_id in
  let agents =
    Array.init n (fun rank ->
        let app = world.World.ranks.(rank) in
        let agent_id =
          Simnet.Proc_id.make ~nid:app.Simnet.Proc_id.nid
            ~pid:(agent_pid_base + app.Simnet.Proc_id.pid)
        in
        (rank, make_endpoint world agent_id))
  in
  let statuses = Array.make n min_int in
  let started = ref Time_ns.zero in
  let finished = ref Time_ns.zero in
  (* Per-rank control agents: wait for start, run the main, report. *)
  Array.iter
    (fun (rank, agent) ->
      Scheduler.spawn world.World.sched
        ~name:(Printf.sprintf "ctl-agent%d" rank) (fun () ->
          let start =
            Collectives.Pool.recv agent.pool
              ~bits:(bits ~kind:kind_start ~job:job_id ~rank)
          in
          let job = Int64.to_int (Bytes.get_int64_le start 0) in
          let size = Int64.to_int (Bytes.get_int64_le start 8) in
          assert (job = job_id && size = n);
          let status = main ~rank in
          Collectives.Pool.send agent.pool ~dst:launcher_id
            ~bits:(bits ~kind:kind_exit ~job:job_id ~rank)
            (encode_exit status)))
    agents;
  (* The launcher: start everyone, then gather every exit status. *)
  Scheduler.spawn world.World.sched ~name:"yod" (fun () ->
      started := Scheduler.now world.World.sched;
      Array.iter
        (fun (rank, agent) ->
          Collectives.Pool.send launcher.pool ~dst:(P.Ni.id agent.ni)
            ~bits:(bits ~kind:kind_start ~job:job_id ~rank)
            (encode_start ~job:job_id ~size:n))
        agents;
      for rank = 0 to n - 1 do
        let exit_msg =
          Collectives.Pool.recv launcher.pool
            ~bits:(bits ~kind:kind_exit ~job:job_id ~rank)
        in
        statuses.(rank) <- Int64.to_int (Bytes.get_int64_le exit_msg 0)
      done;
      finished := Scheduler.now world.World.sched);
  World.run world;
  { job_id; statuses; elapsed = Time_ns.sub !finished !started }
