(** The job-control protocol of the parallel runtime — Cplant's "yod".

    §2: on these machines "the only way to communicate with a process on
    a compute node is via Portals", so job launch itself is a Portals
    protocol. The launcher process puts a {e start} message (job id, job
    size) to a per-rank control agent listening on the system portal
    entry; each agent runs the rank's main and puts an {e exit status}
    back; the launcher gathers all statuses.

    Control agents are separate simulated processes (distinct pids on the
    ranks' nodes), so application traffic and runtime traffic share nodes
    and wires but not endpoints — the multi-process-per-node design of
    §2. *)

type report = {
  job_id : int;
  statuses : int array;  (** Exit status per rank, as gathered. *)
  elapsed : Sim_engine.Time_ns.t;
      (** Launcher-observed time from first start message to last exit. *)
}

val control_portal : int
(** The portal table entry the control protocol lives on (2). *)

val run_job :
  ?job_id:int -> World.world -> (rank:int -> int) -> report
(** Launch the job over the control protocol and drive the simulation to
    completion: every rank's main runs only after its agent received the
    start message, and the report is complete when the launcher has all
    exit statuses. The main's return value is the rank's exit status. *)
