open Sim_engine

type t = {
  name : string;
  wire_latency : Time_ns.t;
  wire_bandwidth : float;
  mtu : int;
  packet_header : int;
  nic_tx_cost : Time_ns.t;
  nic_rx_cost : Time_ns.t;
  nic_match_cost : Time_ns.t;
  host_interrupt_cost : Time_ns.t;
  host_syscall_cost : Time_ns.t;
  host_match_cost : Time_ns.t;
  copy_bandwidth : float;
  dma_bandwidth : float;
}

(* Calibration notes. Myrinet of the LANai-7 era carried ~1.28 Gb/s
   (160 MB/s); a 500 MHz Pentium III copied ~250 MB/s through the kernel;
   interrupt delivery cost several microseconds. The MCP preset is tuned so
   a zero-length Portals ping-pong lands under the paper's 20 us claim; the
   kernel preset adds the interrupt + bounce-copy costs of the production
   Cplant path; the TCP preset represents the reference implementation with
   heavyweight per-message host processing. *)

let myrinet_mcp =
  {
    name = "myrinet-mcp";
    wire_latency = Time_ns.us 1.0;
    wire_bandwidth = 160e6;
    mtu = 4096;
    packet_header = 32;
    nic_tx_cost = Time_ns.us 2.0;
    nic_rx_cost = Time_ns.us 3.0;
    nic_match_cost = Time_ns.ns 150;
    host_interrupt_cost = Time_ns.us 7.0;
    host_syscall_cost = Time_ns.us 2.0;
    host_match_cost = Time_ns.ns 80;
    copy_bandwidth = 250e6;
    dma_bandwidth = 400e6;
  }

let myrinet_kernel =
  {
    myrinet_mcp with
    name = "myrinet-kernel";
    (* Kernel-module Portals: NIC is a bare packet engine, protocol work
       happens in the interrupt path on the host. *)
    nic_tx_cost = Time_ns.us 1.0;
    nic_rx_cost = Time_ns.us 1.0;
    nic_match_cost = Time_ns.ns 0;
  }

(* The paper's §2 heritage: Puma on ASCI Red — network interface on the
   memory bus, kernel-mediated but with a physically contiguous memory
   scheme making validation a bounds check. Tight host costs, slower
   wire than Myrinet-era links. *)
let asci_red_puma =
  {
    name = "asci-red-puma";
    wire_latency = Time_ns.us 2.0;
    wire_bandwidth = 380e6;
    mtu = 1984;
    packet_header = 16;
    nic_tx_cost = Time_ns.us 0.5;
    nic_rx_cost = Time_ns.us 0.5;
    nic_match_cost = Time_ns.ns 0;
    host_interrupt_cost = Time_ns.us 2.5;
    host_syscall_cost = Time_ns.us 1.0;
    host_match_cost = Time_ns.ns 60;
    copy_bandwidth = 150e6;
    dma_bandwidth = 380e6;
  }

let tcp_reference =
  {
    name = "tcp-reference";
    wire_latency = Time_ns.us 5.0;
    wire_bandwidth = 100e6;
    mtu = 1460;
    packet_header = 58;
    nic_tx_cost = Time_ns.us 1.0;
    nic_rx_cost = Time_ns.us 1.0;
    nic_match_cost = Time_ns.ns 0;
    host_interrupt_cost = Time_ns.us 12.0;
    host_syscall_cost = Time_ns.us 5.0;
    host_match_cost = Time_ns.ns 120;
    copy_bandwidth = 200e6;
    dma_bandwidth = 200e6;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: wire %a + %.0f MB/s, mtu %d, nic tx/rx %a/%a, intr %a, copy %.0f MB/s"
    t.name Time_ns.pp t.wire_latency (t.wire_bandwidth /. 1e6) t.mtu Time_ns.pp
    t.nic_tx_cost Time_ns.pp t.nic_rx_cost Time_ns.pp t.host_interrupt_cost
    (t.copy_bandwidth /. 1e6)

let packets_of_len t len =
  if len <= 0 then 1 else (len + t.mtu - 1) / t.mtu

let wire_bytes_of_len t len = len + (packets_of_len t len * t.packet_header)

let tx_time t len =
  Time_ns.of_rate ~bytes_per_s:t.wire_bandwidth (wire_bytes_of_len t len)

let copy_time t len = Time_ns.of_rate ~bytes_per_s:t.copy_bandwidth len
let dma_time t len = Time_ns.of_rate ~bytes_per_s:t.dma_bandwidth len
