type nid = int
type pid = int
type t = { nid : nid; pid : pid }

let make ~nid ~pid = { nid; pid }
let equal a b = a.nid = b.nid && a.pid = b.pid
let compare a b =
  match Int.compare a.nid b.nid with 0 -> Int.compare a.pid b.pid | c -> c

let hash t = (t.nid * 65_537) + t.pid
let pp ppf t = Format.fprintf ppf "%d:%d" t.nid t.pid
let to_string t = Format.asprintf "%a" pp t
