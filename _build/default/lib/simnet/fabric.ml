open Sim_engine

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  drops_unregistered : int;
  drops_injected : int;
}

type t = {
  fabric_sched : Scheduler.t;
  fabric_profile : Profile.t;
  nodes : Node.t array;
  handlers : (Proc_id.t, src:Proc_id.t -> bytes -> unit) Hashtbl.t;
  mutable fault : (src:Proc_id.t -> dst:Proc_id.t -> len:int -> bool) option;
  sent : Stats.Counter.t;
  sent_bytes : Stats.Counter.t;
  delivered : Stats.Counter.t;
  drop_unregistered : Stats.Counter.t;
  drop_injected : Stats.Counter.t;
}

let create sched ~profile ~nodes =
  if nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  {
    fabric_sched = sched;
    fabric_profile = profile;
    nodes = Array.init nodes (fun nid -> Node.create sched ~nid ~profile);
    handlers = Hashtbl.create 64;
    fault = None;
    sent = Stats.Counter.create ~name:"fabric.sent" ();
    sent_bytes = Stats.Counter.create ~name:"fabric.sent_bytes" ();
    delivered = Stats.Counter.create ~name:"fabric.delivered" ();
    drop_unregistered = Stats.Counter.create ~name:"fabric.drop_unregistered" ();
    drop_injected = Stats.Counter.create ~name:"fabric.drop_injected" ();
  }

let sched t = t.fabric_sched
let profile t = t.fabric_profile
let node_count t = Array.length t.nodes

let node t nid =
  if nid < 0 || nid >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Fabric.node: nid %d out of range" nid);
  t.nodes.(nid)

let register t pid handler =
  if Hashtbl.mem t.handlers pid then
    invalid_arg ("Fabric.register: already registered: " ^ Proc_id.to_string pid);
  ignore (node t pid.Proc_id.nid);
  Hashtbl.replace t.handlers pid handler

let unregister t pid = Hashtbl.remove t.handlers pid
let is_registered t pid = Hashtbl.mem t.handlers pid

let set_fault_injector t fault = t.fault <- fault

let send t ~src ~dst payload =
  let len = Bytes.length payload in
  let sender = node t src.Proc_id.nid in
  Stats.Counter.incr t.sent;
  Stats.Counter.add t.sent_bytes len;
  let serialised =
    Link.occupy (Node.tx_link sender) (Profile.tx_time t.fabric_profile len)
  in
  let arrival = Time_ns.add serialised t.fabric_profile.Profile.wire_latency in
  let dropped_by_fault =
    match t.fault with None -> false | Some f -> f ~src ~dst ~len
  in
  Scheduler.at t.fabric_sched arrival (fun () ->
      if dropped_by_fault then Stats.Counter.incr t.drop_injected
      else
        match Hashtbl.find_opt t.handlers dst with
        | None -> Stats.Counter.incr t.drop_unregistered
        | Some handler ->
          Stats.Counter.incr t.delivered;
          handler ~src payload)

let stats t =
  {
    messages_sent = Stats.Counter.value t.sent;
    bytes_sent = Stats.Counter.value t.sent_bytes;
    messages_delivered = Stats.Counter.value t.delivered;
    drops_unregistered = Stats.Counter.value t.drop_unregistered;
    drops_injected = Stats.Counter.value t.drop_injected;
  }
