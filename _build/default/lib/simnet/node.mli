(** A simulated cluster node: host CPU plus network injection link.

    Compute-node architecture follows the paper's platforms: one
    application-visible host processor and a network interface with its own
    transmit pipeline. Multiple simulated processes may live on one node
    and share both. *)

type t

val create : Sim_engine.Scheduler.t -> nid:Proc_id.nid -> profile:Profile.t -> t
val nid : t -> Proc_id.nid
val profile : t -> Profile.t
val host_cpu : t -> Sim_engine.Cpu.t
val tx_link : t -> Link.t
val sched : t -> Sim_engine.Scheduler.t
