(** Process addressing.

    Portals is connectionless: a peer is named by a (node id, process id)
    pair, never by a connection. Node ids identify a physical node on the
    fabric; process ids distinguish the processes sharing that node (the
    Paragon/ASCI-Red heritage of multiple communicating processes per
    node, §2 of the paper). *)

type nid = int
(** Node identifier. *)

type pid = int
(** Process identifier, unique within a node. *)

type t = { nid : nid; pid : pid }

val make : nid:nid -> pid:pid -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
