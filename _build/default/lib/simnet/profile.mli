(** Cost parameters for the simulated hardware.

    One profile describes a homogeneous cluster: link characteristics plus
    the processing costs of each receive/transmit path. The presets are
    calibrated against the numbers the paper and its era report — they are
    not measurements of real hardware, but they put latencies and
    bandwidths in the published ballpark so the benches reproduce the
    paper's {e shape} (who wins, by what rough factor). *)

type t = {
  name : string;
  wire_latency : Sim_engine.Time_ns.t;
      (** One-way cable + switch traversal time. *)
  wire_bandwidth : float;  (** Link bandwidth, bytes per second. *)
  mtu : int;  (** Maximum packet payload, bytes. *)
  packet_header : int;  (** Per-packet wire header, bytes. *)
  nic_tx_cost : Sim_engine.Time_ns.t;
      (** NIC processing to launch one message (DMA setup, header build). *)
  nic_rx_cost : Sim_engine.Time_ns.t;
      (** NIC processing to accept one message before any host handoff. *)
  nic_match_cost : Sim_engine.Time_ns.t;
      (** Cost of one match-list entry comparison when matching runs on the
          NIC (the MCP case); host-side matching uses {!host_match_cost}. *)
  host_interrupt_cost : Sim_engine.Time_ns.t;
      (** Interrupt delivery + handler entry/exit on the host CPU. *)
  host_syscall_cost : Sim_engine.Time_ns.t;
      (** Trap into the kernel for send-side system calls. *)
  host_match_cost : Sim_engine.Time_ns.t;
      (** Cost of one match-list entry comparison on the host. *)
  copy_bandwidth : float;
      (** Host memory-copy bandwidth (kernel bounce buffers), bytes/s. *)
  dma_bandwidth : float;
      (** NIC DMA engine bandwidth to/from user memory, bytes/s. *)
}

val myrinet_mcp : t
(** Portals on the LANai: matching and delivery on the NIC, no host
    involvement (the in-progress MCP implementation of §3, "<20us
    zero-length ping-pong"). *)

val myrinet_kernel : t
(** The production Cplant path of §3: Myrinet wire, but Portals processing
    in a Linux kernel module — interrupt per message, bounce-buffer
    copies. *)

val asci_red_puma : t
(** The §2 heritage platform: Puma on ASCI Red — NIC on the memory bus,
    kernel-mediated delivery with cheap address validation. *)

val tcp_reference : t
(** The TCP/IP reference implementation: same commodity wire, heavyweight
    per-message host costs. *)

val pp : Format.formatter -> t -> unit

val packets_of_len : t -> int -> int
(** Number of MTU-sized packets needed for a payload of the given length
    (at least 1: even a zero-byte message occupies one header packet). *)

val wire_bytes_of_len : t -> int -> int
(** Total bytes on the wire for a payload: payload plus per-packet
    headers. *)

val tx_time : t -> int -> Sim_engine.Time_ns.t
(** Serialisation time of a payload of the given length onto the link. *)

val copy_time : t -> int -> Sim_engine.Time_ns.t
(** Host memcpy time for the given length. *)

val dma_time : t -> int -> Sim_engine.Time_ns.t
(** NIC DMA time for the given length. *)
