(** The raw message fabric: reliable, in-order, connectionless delivery of
    byte strings between registered (nid, pid) endpoints.

    This is "the Myrinet" of the simulation. A send serialises on the
    sender's injection {!Link} (so bursts pipeline back-to-back), crosses
    the wire after the profile latency, and is handed to the handler
    registered for the destination process. Messages from one sender to
    one destination are never reordered — a property the Portals layer
    depends on (§2: "reliable, in-order delivery").

    Messages to unregistered destinations are dropped and counted, as are
    messages discarded by an installed fault injector (used by tests to
    exercise drop paths; the real network is assumed reliable). *)

type t

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  drops_unregistered : int;
  drops_injected : int;
}

val create : Sim_engine.Scheduler.t -> profile:Profile.t -> nodes:int -> t
(** [create sched ~profile ~nodes] is a fabric of [nodes] identical nodes
    numbered [0 .. nodes-1]. *)

val sched : t -> Sim_engine.Scheduler.t
val profile : t -> Profile.t
val node_count : t -> int

val node : t -> Proc_id.nid -> Node.t
(** Raises [Invalid_argument] for an out-of-range nid. *)

val register : t -> Proc_id.t -> (src:Proc_id.t -> bytes -> unit) -> unit
(** Attach the receive handler for a process. Raises [Invalid_argument] if
    the process is already registered. The handler runs at wire-arrival
    time; receive-path processing costs are the caller's concern. *)

val unregister : t -> Proc_id.t -> unit
val is_registered : t -> Proc_id.t -> bool

val send : t -> src:Proc_id.t -> dst:Proc_id.t -> bytes -> unit
(** Inject a message. Returns immediately; delivery happens via scheduled
    events. The payload is not copied — callers must not mutate it after
    sending (simulated NICs DMA from live buffers; Portals builds a fresh
    wire image per message). *)

val set_fault_injector : t -> (src:Proc_id.t -> dst:Proc_id.t -> len:int -> bool) option -> unit
(** With [Some f], each message for which [f] returns true is silently
    dropped (after occupying the wire). *)

val stats : t -> stats
