type t = {
  sched : Sim_engine.Scheduler.t;
  node_nid : Proc_id.nid;
  node_profile : Profile.t;
  cpu : Sim_engine.Cpu.t;
  link : Link.t;
}

let create sched ~nid ~profile =
  {
    sched;
    node_nid = nid;
    node_profile = profile;
    cpu = Sim_engine.Cpu.create ~name:(Printf.sprintf "cpu%d" nid) sched;
    link = Link.create ~name:(Printf.sprintf "link%d" nid) sched;
  }

let nid t = t.node_nid
let profile t = t.node_profile
let host_cpu t = t.cpu
let tx_link t = t.link
let sched t = t.sched
