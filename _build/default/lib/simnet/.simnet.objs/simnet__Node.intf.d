lib/simnet/node.mli: Link Proc_id Profile Sim_engine
