lib/simnet/node.ml: Link Printf Proc_id Profile Sim_engine
