lib/simnet/fabric.mli: Node Proc_id Profile Sim_engine
