lib/simnet/transport.mli: Fabric Proc_id Sim_engine
