lib/simnet/simnet.ml: Fabric Link Node Proc_id Profile Transport
