lib/simnet/link.ml: Scheduler Sim_engine Time_ns
