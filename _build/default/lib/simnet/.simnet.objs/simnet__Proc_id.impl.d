lib/simnet/proc_id.ml: Format Int
