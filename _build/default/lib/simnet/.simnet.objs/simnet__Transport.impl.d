lib/simnet/transport.ml: Array Bytes Cpu Fabric Link Node Printf Proc_id Profile Scheduler Sim_engine Time_ns
