lib/simnet/link.mli: Sim_engine
