lib/simnet/profile.ml: Format Sim_engine Time_ns
