lib/simnet/fabric.ml: Array Bytes Hashtbl Link Node Printf Proc_id Profile Scheduler Sim_engine Stats Time_ns
