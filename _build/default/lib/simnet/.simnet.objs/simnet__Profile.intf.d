lib/simnet/profile.mli: Format Sim_engine
