lib/simnet/proc_id.mli: Format
