(** Frames of the RTS/CTS packetization module (§3).

    The kernel-module transport speaks its own framing {e below} Portals:
    small messages travel as a single [Eager] frame; large messages open
    with a request-to-send, wait for a clear-to-send granting kernel
    buffer space, then stream MTU-sized [Data] frames that are reassembled
    at the receiver. *)

type kind =
  | Eager  (** Complete small message. *)
  | Rts  (** Request to send [total_len] bytes. *)
  | Cts  (** Receiver grants the transfer. *)
  | Data  (** One packet of a granted transfer. *)

val kind_to_string : kind -> string

type t = {
  kind : kind;
  msg_id : int;  (** Sender-assigned, unique per (src, dst) pair. *)
  total_len : int;  (** Full message length (all kinds). *)
  offset : int;  (** Position of [payload] within the message (Data). *)
  payload : bytes;  (** Message bytes (Eager, Data); else empty. *)
}

val header_size : int

val encode : t -> bytes

val decode : bytes -> (t, string) result

val pp : Format.formatter -> t -> unit
