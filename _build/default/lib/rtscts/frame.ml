type kind = Eager | Rts | Cts | Data

let kind_to_string = function
  | Eager -> "EAGER"
  | Rts -> "RTS"
  | Cts -> "CTS"
  | Data -> "DATA"

type t = {
  kind : kind;
  msg_id : int;
  total_len : int;
  offset : int;
  payload : bytes;
}

let magic = 0x5C
let header_size = 26

let kind_code = function Eager -> 0 | Rts -> 1 | Cts -> 2 | Data -> 3

let kind_of_code = function
  | 0 -> Some Eager
  | 1 -> Some Rts
  | 2 -> Some Cts
  | 3 -> Some Data
  | _ -> None

let encode t =
  let buf = Bytes.create (header_size + Bytes.length t.payload) in
  Bytes.set_uint8 buf 0 magic;
  Bytes.set_uint8 buf 1 (kind_code t.kind);
  Bytes.set_int64_le buf 2 (Int64.of_int t.msg_id);
  Bytes.set_int64_le buf 10 (Int64.of_int t.total_len);
  Bytes.set_int64_le buf 18 (Int64.of_int t.offset);
  Bytes.blit t.payload 0 buf header_size (Bytes.length t.payload);
  buf

let decode buf =
  if Bytes.length buf < header_size then Error "rtscts frame: truncated header"
  else if Bytes.get_uint8 buf 0 <> magic then Error "rtscts frame: bad magic"
  else begin
    match kind_of_code (Bytes.get_uint8 buf 1) with
    | None -> Error "rtscts frame: unknown kind"
    | Some kind ->
      Ok
        {
          kind;
          msg_id = Int64.to_int (Bytes.get_int64_le buf 2);
          total_len = Int64.to_int (Bytes.get_int64_le buf 10);
          offset = Int64.to_int (Bytes.get_int64_le buf 18);
          payload = Bytes.sub buf header_size (Bytes.length buf - header_size);
        }
  end

let pp ppf t =
  Format.fprintf ppf "%s id=%d total=%d off=%d payload=%d"
    (kind_to_string t.kind) t.msg_id t.total_len t.offset
    (Bytes.length t.payload)
