lib/rtscts/frame.ml: Bytes Format Int64
