lib/rtscts/rtscts.mli: Frame Simnet
