lib/rtscts/rtscts.ml: Array Bytes Cpu Frame Hashtbl Printf Queue Scheduler Sim_engine Simnet Time_ns
