lib/rtscts/frame.mli: Format
