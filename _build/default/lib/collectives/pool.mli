(** A pooled-message endpoint on one portal table entry.

    Collective algorithms exchange short-lived point-to-point messages
    whose arrival order relative to the receiver's readiness is not
    controlled (peers enter the collective at different times). Portals
    discards messages with no buffer (§4.1), so this pool keeps catch-all
    match entries over slab MDs with locally managed offsets permanently
    posted; arrivals land there, and callers {!recv} by exact match-bits,
    blocking on the event queue until the message they expect has
    arrived. Slabs recycle once drained — the §4.1 memory argument again:
    pool memory is sized by protocol concurrency, not job size. *)

type t

val create :
  Portals.Ni.t ->
  portal_index:int ->
  ?slab_size:int ->
  ?slab_count:int ->
  ?eq_capacity:int ->
  unit ->
  t
(** Defaults: 4 slabs of 128 KiB, EQ depth 4096. *)

val ni : t -> Portals.Ni.t

val send :
  t -> dst:Simnet.Proc_id.t -> bits:Portals.Match_bits.t -> bytes -> unit
(** Fire-and-forget put to the peer's pool on the same portal index. The
    fabric is reliable, so no completion tracking is needed. *)

val recv : t -> bits:Portals.Match_bits.t -> bytes
(** Fiber-only: block until a pooled message with exactly [bits] has
    arrived, remove it from the pool and return a copy of its payload.
    Messages with the same bits are claimed in arrival order. *)

val pending : t -> int
(** Messages sitting in the pool (drained events not yet claimed). *)

val largest_message : t -> int
(** Upper bound on a single message: one slab. *)
