lib/collectives/pool.ml: Array Bytes Portals Queue
