lib/collectives/pool.mli: Portals Simnet
