lib/collectives/collectives.mli: Pool Portals Simnet
