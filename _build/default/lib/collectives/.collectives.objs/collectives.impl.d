lib/collectives/collectives.ml: Array Bytes Float Int64 Pool Portals Simnet
