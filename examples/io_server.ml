(* Multiple protocols sharing one interface (section 2: "Portals ... had
   to support not only application message passing, but also I/O
   protocols to a remote filesystem, and protocols between the components
   of the parallel runtime environment").

   Node 0 runs a file server speaking its own protocol on two dedicated
   portal table entries: clients *get* file blocks straight out of the
   server's buffer cache (one-sided reads the server process never sees),
   and *put* write requests into a slab the server drains. Meanwhile the
   same client processes run an MPI computation — over the very same
   network interface, on the MPI portal entries. The portal table keeps
   the protocols apart.

     dune exec examples/io_server.exe *)

open Sim_engine
module P = Portals
module MP = Mpi.Mpi_portals

let pt_file_read = 20 (* block cache exposed for one-sided gets *)
let pt_file_write = 21 (* write requests, server-drained *)
let block_size = 4096
let blocks = 16

let ok what = P.Errors.ok_exn ~op:what

(* --- client-side file protocol over an existing Portals NI ---------- *)

let file_read ni eqh eqq ~server ~block =
  let buffer = Bytes.create block_size in
  let mdh =
    ok "read md"
      (P.Ni.md_bind ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink ~eq:eqh
            buffer))
  in
  ok "read get"
    (P.Ni.get ni ~md:mdh
       (P.Ni.op ~target:server ~portal_index:pt_file_read
          ~match_bits:(P.Match_bits.of_int block) ()));
  let rec await () =
    let ev = P.Event.Queue.wait eqq in
    match ev.P.Event.kind with
    | P.Event.Reply -> buffer
    | P.Event.Sent | P.Event.Ack | P.Event.Put | P.Event.Get
    | P.Event.Atomic | P.Event.Triggered -> await ()
  in
  await ()

let file_write ni eqh eqq ~server ~block data =
  let bits = P.Match_bits.field ~shift:32 ~width:16 block in
  let mdh =
    ok "write md"
      (P.Ni.md_bind ni
         (P.Ni.md_spec ~threshold:(P.Md.Count 2) ~unlink:P.Md.Unlink ~eq:eqh
            data))
  in
  ok "write put"
    (P.Ni.put ni ~md:mdh ~ack:true
       (P.Ni.op ~target:server ~portal_index:pt_file_write ~match_bits:bits ()));
  (* Wait for the acknowledgment: the request is in the server's intake. *)
  let rec await () =
    let ev = P.Event.Queue.wait eqq in
    match ev.P.Event.kind with
    | P.Event.Ack -> ()
    | P.Event.Sent | P.Event.Reply | P.Event.Put | P.Event.Get
    | P.Event.Atomic | P.Event.Triggered -> await ()
  in
  await ()

let () =
  let clients = 3 in
  let world = Runtime.create_world ~nodes:(1 + clients) () in
  let sched = world.Runtime.sched in
  let server_id = world.Runtime.ranks.(0) in

  (* ---- server structures ------------------------------------------- *)
  let server_ni = P.Ni.create world.Runtime.transport ~id:server_id () in
  let cache =
    Array.init blocks (fun b ->
        let data = Bytes.make block_size (Char.chr (65 + (b mod 26))) in
        let me =
          ok "cache me"
            (P.Ni.me_attach server_ni ~portal_index:pt_file_read
               ~match_id:P.Match_id.any
               ~match_bits:(P.Match_bits.of_int b)
               ~ignore_bits:P.Match_bits.zero ())
        in
        let _ =
          ok "cache md"
            (P.Ni.md_attach server_ni ~me
               (P.Ni.md_spec
                  ~options:
                    {
                      P.Md.op_put = false;
                      op_get = true;
                      manage_remote = true;
                      truncate = false;
                      ack_disable = true;
                    }
                  data))
        in
        data)
  in
  let write_eqh = ok "weq" (P.Ni.eq_alloc server_ni ~capacity:256) in
  let write_eq = ok "weq" (P.Ni.eq server_ni write_eqh) in
  let write_me =
    ok "write me"
      (P.Ni.me_attach server_ni ~portal_index:pt_file_write
         ~match_id:P.Match_id.any ~match_bits:P.Match_bits.zero
         ~ignore_bits:P.Match_bits.all_ones ())
  in
  let write_slab = Bytes.create (64 * 1024) in
  let _ =
    ok "write slab md"
      (P.Ni.md_attach server_ni ~me:write_me
         (P.Ni.md_spec
            ~options:
              {
                P.Md.op_put = true;
                op_get = false;
                manage_remote = false;
                truncate = false;
                ack_disable = false;
              }
            ~eq:write_eqh write_slab))
  in
  let writes_applied = ref 0 in
  let expected_writes = clients in
  Scheduler.spawn sched ~name:"file-server" (fun () ->
      while !writes_applied < expected_writes do
        let ev = P.Event.Queue.wait write_eq in
        (* Apply the write: the block number travels in the match bits. *)
        let block =
          P.Match_bits.extract ~shift:32 ~width:16 ev.P.Event.match_bits
        in
        Bytes.blit write_slab ev.P.Event.offset cache.(block) 0 ev.P.Event.mlength;
        incr writes_applied
      done);

  (* ---- clients: MPI job + file I/O on one interface each ----------- *)
  let client_ranks = Array.sub world.Runtime.ranks 1 clients in
  let endpoints =
    Array.init clients (fun rank ->
        MP.create world.Runtime.transport ~ranks:client_ranks ~rank ())
  in
  let reads_ok = ref 0 and readbacks_ok = ref 0 and mpi_sum = ref 0 in
  Array.iteri
    (fun c ep ->
      Scheduler.spawn sched ~name:(Printf.sprintf "client%d" c) (fun () ->
          (* The file protocol runs on the SAME interface as MPI, on its
             own portal entries. *)
          let ni = MP.ni ep in
          let eqh = ok "client eq" (P.Ni.eq_alloc ni ~capacity:64) in
          let eqq = ok "client eq" (P.Ni.eq ni eqh) in
          (* 1. Read a block one-sidedly and verify the cache contents. *)
          let my_block = c * 2 in
          let data = file_read ni eqh eqq ~server:server_id ~block:my_block in
          if Bytes.get data 0 = Char.chr (65 + (my_block mod 26)) then
            incr reads_ok;
          (* 2. MPI among the clients, interleaved with the I/O. *)
          if c <> 0 then
            ignore (MP.wait ep (MP.isend ep ~dst:0 ~tag:5 (Bytes.make 1 (Char.chr c))))
          else
            for _ = 1 to clients - 1 do
              let b = Bytes.create 1 in
              ignore (MP.wait ep (MP.irecv ep ~tag:5 b));
              mpi_sum := !mpi_sum + Char.code (Bytes.get b 0)
            done;
          (* 3. Write a block, then read it back. *)
          let target_block = blocks - 1 - c in
          file_write ni eqh eqq ~server:server_id ~block:target_block
            (Bytes.make block_size (Char.chr (97 + c)));
          (* Give the server fiber a moment to apply the intake. *)
          Scheduler.delay sched (Time_ns.ms 1.0);
          let back = file_read ni eqh eqq ~server:server_id ~block:target_block in
          if Bytes.get back 100 = Char.chr (97 + c) then incr readbacks_ok))
    endpoints;
  Runtime.run world;
  Format.printf "io_server: %d clients against one file server@." clients;
  Format.printf "one-sided block reads verified: %d/%d@." !reads_ok clients;
  Format.printf "MPI traffic alongside I/O: sum of client ids = %d (expect %d)@."
    !mpi_sum
    (clients * (clients - 1) / 2);
  Format.printf "writes applied by server: %d, readbacks verified: %d/%d@."
    !writes_applied !readbacks_ok clients;
  Format.printf "server host CPU stolen: %a@." Time_ns.pp
    (Cpu.stolen_total (Runtime.host_cpu_of_rank world 0));
  if !reads_ok = clients && !readbacks_ok = clients then
    Format.printf "verified: two protocols coexist on one interface@."
  else begin
    Format.printf "FAILED@.";
    exit 1
  end
