(* One-sided programming on Portals: a distributed work-queue with shmem
   idioms (section 4.4's one-sided addressing; section 2's MPI-2
   one-sided heritage).

   PE 0 owns a bag of work items in a symmetric region. Workers *get*
   their next item index from the bag region, process it, *put* the
   result back into a results region, and finally set a per-worker done
   flag that PE 0 blocks on with the wait_until idiom. The owner process
   never responds to any of this traffic — every read and write is served
   by its network interface.

     dune exec examples/shmem_counters.exe *)

open Sim_engine

let workers = 4
let items = 12

let () =
  let pes = 1 + workers in
  let world = Runtime.create_world ~nodes:pes () in
  let oss =
    Array.mapi
      (fun rank pid ->
        let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
        Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ())
      world.Runtime.ranks
  in
  (* Symmetric allocations, same order everywhere. *)
  let bag = Array.map (fun os -> Onesided.alloc os (items * 8)) oss in
  let results = Array.map (fun os -> Onesided.alloc os (items * 8)) oss in
  let flags = Array.map (fun os -> Onesided.alloc os workers) oss in

  (* PE 0 fills its bag with work items (values to square). *)
  let bag0 = Onesided.region_bytes oss.(0) bag.(0) in
  for i = 0 to items - 1 do
    Bytes.set_int64_le bag0 (i * 8) (Int64.of_int (i + 3))
  done;

  Array.iteri
    (fun rank os ->
      Scheduler.spawn world.Runtime.sched ~name:(Printf.sprintf "pe%d" rank)
        (fun () ->
          if rank = 0 then begin
            (* The owner only waits for the done flags; it serves nothing. *)
            for w = 0 to workers - 1 do
              Onesided.wait_until os flags.(0) ~offset:w
                ~value:Onesided.barrier_value
            done;
            let out = Onesided.region_bytes os results.(0) in
            Format.printf "owner: all %d workers done@." workers;
            for i = 0 to items - 1 do
              let v = Int64.to_int (Bytes.get_int64_le out (i * 8)) in
              Format.printf "  item %2d -> %d@." i v
            done
          end
          else begin
            let w = rank - 1 in
            (* Static partition: worker w handles items w, w+workers, ... *)
            let i = ref w in
            while !i < items do
              let cell =
                Onesided.get os bag.(rank) ~pe:0 ~offset:(!i * 8) ~len:8
              in
              let v = Int64.to_int (Bytes.get_int64_le cell 0) in
              (* "Process" the item. *)
              Cpu.compute (Runtime.host_cpu_of_rank world rank) (Time_ns.us 50.0);
              let out = Bytes.create 8 in
              Bytes.set_int64_le out 0 (Int64.of_int (v * v));
              Onesided.put os results.(rank) ~pe:0 ~offset:(!i * 8) out;
              i := !i + workers
            done;
            Onesided.quiet os;
            (* Signal completion via the owner's flag region. *)
            Onesided.put os flags.(rank) ~pe:0 ~offset:w
              (Bytes.make 1 Onesided.barrier_value);
            Onesided.quiet os
          end))
    oss;
  Runtime.run world;
  (* Verify. *)
  let out = Onesided.region_bytes oss.(0) results.(0) in
  let all_ok = ref true in
  for i = 0 to items - 1 do
    let v = Int64.to_int (Bytes.get_int64_le out (i * 8)) in
    if v <> (i + 3) * (i + 3) then all_ok := false
  done;
  Format.printf "owner host CPU stolen: %a@." Time_ns.pp
    (Cpu.stolen_total (Runtime.host_cpu_of_rank world 0));
  if !all_ok then Format.printf "verified: %d items squared one-sidedly@." items
  else begin
    Format.printf "MISMATCH@.";
    exit 1
  end
