(* The halo exchange of examples/halo_exchange.ml rewritten over
   one-sided RMA windows (lib/onesided) — same machine, same domain
   decomposition, same arithmetic, and a bit-identical result; only the
   communication layer changes.

   Instead of pre-posted receives, every rank exposes a window holding
   its two ghost slots. Each iteration a rank *puts* its edge cells
   straight into its neighbours' ghost slots, overlaps the interior
   compute with those puts in flight, flushes, and raises a flag byte in
   the neighbour's flag region (the shmem wait_until idiom). The target
   application never calls into the library for any of this — delivery,
   acknowledgment and the flag write are all Portals processing on the
   target interface (application bypass, section 5.1).

   Ghost slots are double-buffered by iteration parity: a neighbour can
   run at most one iteration ahead (its next flag needs our previous
   one), so writes for iteration k+1 land in the other slot pair and
   never clobber an unread ghost. The flag byte carries the iteration
   number, so a stale flag can never satisfy the wait.

   The final gather is one-sided too: every rank puts its strip into
   rank 0's results region and raises a per-rank done flag.

     dune exec examples/halo_exchange_rma.exe *)

open Sim_engine

let nodes = 8
let iterations = 20
let cells_per_rank = 64
let interior_compute = Time_ns.us 200.0

let pack a =
  let b = Bytes.create (Array.length a * 8) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)) a;
  b

(* Sequential reference — identical to examples/halo_exchange.ml, so the
   two distributed variants are checked against the same yardstick. *)
let reference ~ranks () =
  let n = ranks * cells_per_rank in
  let cur = Array.init n (fun i -> float_of_int (i mod 17)) in
  let next = Array.make n 0.0 in
  for _ = 1 to iterations do
    for i = 0 to n - 1 do
      let left = cur.((i + n - 1) mod n) in
      let right = cur.((i + 1) mod n) in
      next.(i) <- (left +. cur.(i) +. right) /. 3.0
    done;
    Array.blit next 0 cur 0 n
  done;
  cur

let () =
  let world = Runtime.create_world ~topology:Simnet.Topology.Ring ~nodes () in
  let topo = Simnet.Fabric.topology world.Runtime.fabric in
  let ranks = Simnet.Topology.nodes topo in

  (* One endpoint per rank over its own interface, then the symmetric
     allocations — same order on every rank, the shmem discipline. *)
  let oss =
    Array.mapi
      (fun rank pid ->
        let ni = Portals.Ni.create world.Runtime.transport ~id:pid () in
        Onesided.create_exn ni ~ranks:world.Runtime.ranks ~rank ())
      world.Runtime.ranks
  in
  (* 2 parities x (left ghost, right ghost), 8 bytes each. *)
  let wins = Array.map (fun os -> Onesided.win_create os ~size:32) oss in
  (* 2 parities x (flag from left, flag from right). *)
  let flags = Array.map (fun os -> Onesided.alloc os 4) oss in
  (* Gather target on rank 0: every rank's strip, and a done flag each. *)
  let results =
    Array.map (fun os -> Onesided.alloc os (ranks * cells_per_rank * 8)) oss
  in
  let dones = Array.map (fun os -> Onesided.alloc os ranks) oss in

  let wait_after_compute = Stats.Summary.create ~name:"wait" () in

  Runtime.spawn_ranks world (fun ~rank ->
      let os = oss.(rank) and w = wins.(rank) in
      let cpu = Runtime.host_cpu_of_rank world rank in
      let left = (rank + ranks - 1) mod ranks in
      let right = (rank + 1) mod ranks in
      let nbrs = Simnet.Topology.neighbors topo rank in
      assert (List.mem left nbrs && List.mem right nbrs);
      let n = cells_per_rank in
      let cur = Array.make (n + 2) 0.0 in
      let next = Array.make (n + 2) 0.0 in
      for i = 0 to n - 1 do
        cur.(i + 1) <- float_of_int (((rank * n) + i) mod 17)
      done;
      (* One passive-target access epoch spans the whole run. *)
      Onesided.Win.lock_all w;
      for iter = 1 to iterations do
        let par = iter mod 2 in
        let fv = Char.chr (iter mod 256) in
        (* Push our edges into the neighbours' ghost slots: our first
           cell is the left neighbour's right ghost, our last cell the
           right neighbour's left ghost. *)
        Onesided.Win.put w ~rank:left ~offset:((par * 16) + 8)
          (pack [| cur.(1) |]);
        Onesided.Win.put w ~rank:right ~offset:(par * 16) (pack [| cur.(n) |]);
        (* Interior compute overlaps the puts in flight — no library
           calls here, and the stencil for cells 2..n-1 needs no ghost. *)
        Cpu.compute cpu interior_compute;
        for i = 2 to n - 1 do
          next.(i) <- (cur.(i - 1) +. cur.(i) +. cur.(i + 1)) /. 3.0
        done;
        let before = Scheduler.now world.Runtime.sched in
        Onesided.Win.flush w ~rank:left;
        Onesided.Win.flush w ~rank:right;
        (* Data is remotely complete; raise this iteration's flags. *)
        Onesided.put os flags.(rank) ~pe:right ~offset:par (Bytes.make 1 fv);
        Onesided.put os flags.(rank) ~pe:left ~offset:(2 + par)
          (Bytes.make 1 fv);
        Onesided.wait_until os flags.(rank) ~offset:par ~value:fv;
        Onesided.wait_until os flags.(rank) ~offset:(2 + par) ~value:fv;
        Stats.Summary.observe wait_after_compute
          (Time_ns.to_us
             (Time_ns.sub (Scheduler.now world.Runtime.sched) before));
        (* Apply the freshly-landed ghosts and finish the edge cells. *)
        let data = Onesided.Win.local_data w in
        cur.(0) <- Int64.float_of_bits (Bytes.get_int64_le data (par * 16));
        cur.(n + 1) <-
          Int64.float_of_bits (Bytes.get_int64_le data ((par * 16) + 8));
        next.(1) <- (cur.(0) +. cur.(1) +. cur.(2)) /. 3.0;
        next.(n) <- (cur.(n - 1) +. cur.(n) +. cur.(n + 1)) /. 3.0;
        Array.blit next 1 cur 1 n
      done;
      Onesided.Win.unlock_all w;
      (* One-sided gather: put our strip into rank 0's results region,
         then raise our done flag there. *)
      Onesided.put os results.(rank) ~pe:0 ~offset:(rank * n * 8)
        (pack (Array.sub cur 1 n));
      Onesided.quiet os;
      Onesided.put os dones.(rank) ~pe:0 ~offset:rank
        (Bytes.make 1 Onesided.barrier_value);
      Onesided.quiet os;
      if rank = 0 then
        for r = 0 to ranks - 1 do
          Onesided.wait_until os dones.(rank) ~offset:r
            ~value:Onesided.barrier_value
        done);
  Runtime.run world;

  (* Verification: against the sequential reference, and bit-for-bit —
     the same arithmetic in the same order must give the same doubles,
     so this result is byte-identical to the send/recv variant's. *)
  let out = Onesided.region_bytes oss.(0) results.(0) in
  let total = ranks * cells_per_rank in
  let expect = reference ~ranks () in
  let max_err = ref 0.0 and checksum = ref 0.0 and exact = ref 0 in
  for i = 0 to total - 1 do
    let bits = Bytes.get_int64_le out (i * 8) in
    let v = Int64.float_of_bits bits in
    let e = Float.abs (v -. expect.(i)) in
    if e > !max_err then max_err := e;
    if bits = Int64.bits_of_float expect.(i) then incr exact;
    checksum := !checksum +. v
  done;
  Format.printf "halo exchange (RMA) on %s: %d ranks x %d cells, %d iterations@."
    (Simnet.Topology.describe (Simnet.Topology.kind topo))
    ranks cells_per_rank iterations;
  Format.printf "simulated time: %a@." Time_ns.pp
    (Scheduler.now world.Runtime.sched);
  Format.printf "checksum %.6f, max error vs sequential reference %.2e@."
    !checksum !max_err;
  Format.printf
    "mean wait after each %.0fus compute phase: %.2f us (puts overlapped)@."
    (Time_ns.to_us interior_compute)
    (Stats.Summary.mean wait_after_compute);
  Format.printf "cells bit-identical to the reference: %d/%d@." !exact total;
  if !max_err > 1e-9 || !exact <> total then begin
    Format.printf "MISMATCH@.";
    exit 1
  end
  else
    Format.printf
      "verified: byte-identical to the send/recv variant's result@."
