(* Halo exchange: the workload the paper's progress-rule discussion is
   about (section 5.2) — written as a walkthrough of the simulator's
   layers (see ARCHITECTURE.md, which references this file).

   A 1-D domain decomposition of a heat-diffusion stencil, laid out on a
   ring interconnect so that the decomposition *is* the topology: each
   rank owns a strip of cells and every iteration exchanges one-cell
   "halos" with its two ring neighbours. Because the domain is mapped
   onto the machine, every halo message crosses exactly one hop link and
   no two flows ever share a link — the traffic pattern the congestion
   experiment (lib/experiments/congestion.ml) calls nearest-neighbor,
   and the reason meshes like Cplant are built the way they are.

   With MPI over Portals the halo messages land in the pre-posted
   receive buffers *while the interior is being computed* —
   communication and computation genuinely overlap with no library calls
   mid-compute. The program reports the mean wait that remains after
   each compute phase (it should be a few microseconds of bookkeeping,
   not a message transfer) and verifies the numerical result against a
   sequential reference.

     dune exec examples/halo_exchange.exe *)

open Sim_engine

(* ---- 1. The machine: a ring interconnect ------------------------------
   Runtime.create_world builds the scheduler, the fabric and the
   transport in one call; ~topology picks the interconnect shape
   (default is the fully-connected seed fabric). We ask for a ring and
   then read everything else — rank count, who neighbours whom — back
   from the topology, so changing [nodes] is the only edit needed to
   rescale the whole example. *)

let nodes = 8
let iterations = 20
let cells_per_rank = 64
let interior_compute = Time_ns.us 200.0

let pack a =
  let b = Bytes.create (Array.length a * 8) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)) a;
  b

let unpack b =
  Array.init (Bytes.length b / 8) (fun i ->
      Int64.float_of_bits (Bytes.get_int64_le b (i * 8)))

(* Sequential reference: the same diffusion over the whole (periodic)
   domain. The ring makes the domain periodic — cell 0's left neighbour
   is the last cell — matching the wraparound links of the topology. *)
let reference ~ranks () =
  let n = ranks * cells_per_rank in
  let cur = Array.init n (fun i -> float_of_int (i mod 17)) in
  let next = Array.make n 0.0 in
  for _ = 1 to iterations do
    for i = 0 to n - 1 do
      let left = cur.((i + n - 1) mod n) in
      let right = cur.((i + 1) mod n) in
      next.(i) <- (left +. cur.(i) +. right) /. 3.0
    done;
    Array.blit next 0 cur 0 n
  done;
  cur

let () =
  let world = Runtime.create_world ~topology:Simnet.Topology.Ring ~nodes () in
  (* The world hands back the topology it actually built; from here on
     the grid dimensions come from it, not from constants. *)
  let topo = Simnet.Fabric.topology world.Runtime.fabric in
  let ranks = Simnet.Topology.nodes topo in

  (* ---- 2. The endpoints: MPI over Portals ----------------------------
     One endpoint per rank, created before any rank runs so no early
     message can be lost (this is what Runtime.launch_mpi automates; we
     do it by hand here to show the seams between the layers). *)
  let endpoints =
    Array.init ranks (fun rank ->
        Mpi.create_portals world.Runtime.transport ~ranks:world.Runtime.ranks
          ~rank ())
  in
  let wait_after_compute = Stats.Summary.create ~name:"wait" () in
  let gathered = Array.make ranks [||] in

  (* ---- 3. The ranks: overlap compute with halo traffic --------------- *)
  Runtime.spawn_ranks world (fun ~rank ->
      let ep = endpoints.(rank) in
      let cpu = Runtime.host_cpu_of_rank world rank in
      (* Ask the topology who our neighbours are. On a ring that is
         exactly the ±1 ranks (with wraparound), and each of these
         exchanges will ride its own private hop link. *)
      let left = (rank + ranks - 1) mod ranks in
      let right = (rank + 1) mod ranks in
      let nbrs = Simnet.Topology.neighbors topo rank in
      assert (List.mem left nbrs && List.mem right nbrs);
      let n = cells_per_rank in
      (* Strip with two ghost cells. *)
      let cur = Array.make (n + 2) 0.0 in
      let next = Array.make (n + 2) 0.0 in
      for i = 0 to n - 1 do
        cur.(i + 1) <- float_of_int (((rank * n) + i) mod 17)
      done;
      for _iter = 1 to iterations do
        (* Pre-post halo receives, then send our edge cells. Tag 1
           carries a cell travelling right (into a left ghost), tag 2 a
           cell travelling left (into a right ghost). *)
        let left_buf = Bytes.create 8 and right_buf = Bytes.create 8 in
        let recvs =
          [
            Mpi.irecv ep ~source:left ~tag:1 left_buf;
            Mpi.irecv ep ~source:right ~tag:2 right_buf;
          ]
        in
        let sends =
          [
            Mpi.isend ep ~dst:left ~tag:2 (pack [| cur.(1) |]);
            Mpi.isend ep ~dst:right ~tag:1 (pack [| cur.(n) |]);
          ]
        in
        (* Interior compute overlaps the halo traffic: no MPI calls
           here. Portals' independent progress (the paper's section 5.2
           rule) is what lets the NIC land both halos meanwhile. *)
        Cpu.compute cpu interior_compute;
        let before = Scheduler.now world.Runtime.sched in
        ignore (Mpi.waitall ep (sends @ recvs));
        Stats.Summary.observe wait_after_compute
          (Time_ns.to_us (Time_ns.sub (Scheduler.now world.Runtime.sched) before));
        (* Apply halos and advance the stencil. *)
        cur.(0) <- (unpack left_buf).(0);
        cur.(n + 1) <- (unpack right_buf).(0);
        for i = 1 to n do
          next.(i) <- (cur.(i - 1) +. cur.(i) +. cur.(i + 1)) /. 3.0
        done;
        Array.blit next 1 cur 1 n
      done;
      (* Gather results at rank 0 for verification. *)
      if rank <> 0 then Mpi.send ep ~dst:0 ~tag:99 (pack (Array.sub cur 1 n))
      else begin
        gathered.(0) <- Array.sub cur 1 n;
        for _ = 1 to ranks - 1 do
          let buf = Bytes.create (n * 8) in
          let st = Mpi.recv ep ~tag:99 buf in
          gathered.(st.Mpi.source) <- unpack buf
        done
      end;
      Mpi.barrier ep;
      Mpi.finalize ep);
  Runtime.run world;

  (* ---- 4. Verification and the numbers ------------------------------- *)
  let result = Array.concat (Array.to_list gathered) in
  let expect = reference ~ranks () in
  let max_err = ref 0.0 and checksum = ref 0.0 in
  Array.iteri
    (fun i v ->
      let e = Float.abs (v -. expect.(i)) in
      if e > !max_err then max_err := e;
      checksum := !checksum +. v)
    result;
  Format.printf "halo exchange on %s: %d ranks x %d cells, %d iterations@."
    (Simnet.Topology.describe (Simnet.Topology.kind topo))
    ranks cells_per_rank iterations;
  Format.printf "simulated time: %a@." Time_ns.pp
    (Scheduler.now world.Runtime.sched);
  Format.printf "checksum %.6f, max error vs sequential reference %.2e@."
    !checksum !max_err;
  Format.printf
    "mean wait after each %.0fus compute phase: %.2f us (overlap works)@."
    (Time_ns.to_us interior_compute)
    (Stats.Summary.mean wait_after_compute);
  Format.printf
    "peak hop-link queue depth: %d (nearest-neighbor traffic never piles up)@."
    (Simnet.Fabric.peak_link_queue_depth world.Runtime.fabric);
  if !max_err > 1e-9 then begin
    Format.printf "MISMATCH@.";
    exit 1
  end
  else Format.printf "verified: distributed result matches the reference@."
