(* Quickstart: the raw Portals 3.0 API on a two-node simulated cluster.

   Walks the paper's core concepts end to end: bring up interfaces, build
   the target-side addressing structures of Figure 3 (portal entry ->
   match entry -> memory descriptor -> event queue), then perform the two
   data movement operations of Figures 1 and 2 — a matching put with an
   acknowledgment and a matching get answered by a reply — while printing
   every completion event.

     dune exec examples/quickstart.exe *)

open Sim_engine
module P = Portals

let pt_index = 12 (* our protocol's portal table entry *)

let show fmt = Format.printf fmt

let ok what = P.Errors.ok_exn ~op:what

let () =
  (* A two-node cluster whose NICs run the Portals processing (the MCP
     placement): no host CPU is involved in any receive below. *)
  let world = Runtime.create_world ~transport:Runtime.Offload ~nodes:2 () in
  let alice = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(0) () in
  let bob = P.Ni.create world.Runtime.transport ~id:world.Runtime.ranks.(1) () in
  show "Interfaces up: alice=%s bob=%s@."
    (Simnet.Proc_id.to_string (P.Ni.id alice))
    (Simnet.Proc_id.to_string (P.Ni.id bob));

  (* --- Bob exposes memory (Figure 3's structures) ------------------- *)
  (* An event queue to learn about operations on his memory... *)
  let bob_eqh = ok "eq_alloc" (P.Ni.eq_alloc bob ~capacity:32) in
  let bob_eq = ok "eq" (P.Ni.eq bob bob_eqh) in
  (* ...a match entry accepting match bits 0xCAFE from anyone... *)
  let bob_me =
    ok "me_attach"
      (P.Ni.me_attach bob ~portal_index:pt_index ~match_id:P.Match_id.any
         ~match_bits:(P.Match_bits.of_int 0xCAFE)
         ~ignore_bits:P.Match_bits.zero ())
  in
  (* ...and a memory descriptor over a real buffer. *)
  let bob_memory = Bytes.make 64 '.' in
  Bytes.blit_string "bob's readable data" 0 bob_memory 32 19;
  let _bob_md =
    ok "md_attach"
      (P.Ni.md_attach bob ~me:bob_me (P.Ni.md_spec ~eq:bob_eqh bob_memory))
  in
  show "Bob exposed 64 bytes at portal %d, match bits 0xCAFE@.@." pt_index;

  (* --- Alice puts into Bob's memory (Figure 1) ---------------------- *)
  let alice_eqh = ok "eq_alloc" (P.Ni.eq_alloc alice ~capacity:32) in
  let alice_eq = ok "eq" (P.Ni.eq alice alice_eqh) in
  let greeting = Bytes.of_string "hello from alice" in
  let put_md =
    ok "md_bind"
      (P.Ni.md_bind alice
         (P.Ni.md_spec ~threshold:(P.Md.Count 2) ~unlink:P.Md.Unlink
            ~eq:alice_eqh greeting))
  in
  Scheduler.spawn world.Runtime.sched ~name:"alice" (fun () ->
      ok "put"
        (P.Ni.put alice ~md:put_md ~ack:true
           (P.Ni.op ~target:(P.Ni.id bob) ~portal_index:pt_index
              ~match_bits:(P.Match_bits.of_int 0xCAFE) ~offset:4 ()));
      show "alice: put posted (16 bytes at offset 4)@.";
      (* Local completion: the message left, then Bob acknowledged. *)
      let sent = P.Event.Queue.wait alice_eq in
      show "alice: %a@." P.Event.pp sent;
      let ack = P.Event.Queue.wait alice_eq in
      show "alice: %a@.@." P.Event.pp ack;

      (* --- Alice gets from Bob's memory (Figure 2) ------------------ *)
      let window = Bytes.create 19 in
      let get_md =
        ok "md_bind"
          (P.Ni.md_bind alice
             (P.Ni.md_spec ~threshold:(P.Md.Count 1) ~unlink:P.Md.Unlink
                ~eq:alice_eqh window))
      in
      ok "get"
        (P.Ni.get alice ~md:get_md
           (P.Ni.op ~target:(P.Ni.id bob) ~portal_index:pt_index
              ~match_bits:(P.Match_bits.of_int 0xCAFE) ~offset:32 ()));
      show "alice: get posted (19 bytes from offset 32)@.";
      let reply = P.Event.Queue.wait alice_eq in
      show "alice: %a@." P.Event.pp reply;
      show "alice: fetched %S@." (Bytes.to_string window));

  Scheduler.spawn world.Runtime.sched ~name:"bob" (fun () ->
      (* Bob only *observes*: both operations complete without him. This
         is application bypass — remove this fiber entirely and the data
         still moves. *)
      let put_ev = P.Event.Queue.wait bob_eq in
      show "bob:   %a@." P.Event.pp put_ev;
      show "bob:   my memory now reads %S@.@."
        (Bytes.to_string (Bytes.sub bob_memory 0 24));
      let get_ev = P.Event.Queue.wait bob_eq in
      show "bob:   %a@." P.Event.pp get_ev);

  Runtime.run world;
  show "@.Simulated time elapsed: %a@." Time_ns.pp
    (Scheduler.now world.Runtime.sched);
  show "Host CPU cycles stolen on bob's node: %a (the NIC did all the work)@."
    Time_ns.pp
    (Cpu.stolen_total (Runtime.host_cpu_of_rank world 1))
